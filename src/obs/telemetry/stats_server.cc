#include "obs/telemetry/stats_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/env.h"
#include "common/mutex.h"
#include "obs/metrics.h"
#include "obs/obs_lock.h"
#include "obs/telemetry/prometheus.h"

namespace ppr {
namespace {

std::string HttpResponse(int code, const char* reason,
                         const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.0 " << code << " " << reason << "\r\n"
      << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return;  // peer went away; nothing useful to do
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

std::string StatsServerResponseFor(const std::string& request_line) {
  std::istringstream line(request_line);
  std::string method;
  std::string path;
  line >> method >> path;
  if (method != "GET") {
    return HttpResponse(405, "Method Not Allowed", "method not allowed\n");
  }
  if (path != "/metrics" && path != "/") {
    return HttpResponse(404, "Not Found", "try /metrics\n");
  }
  MetricsSnapshot snapshot;
  {
    MutexLock lock(GlobalObsMutex());
    snapshot = GlobalMetrics().Snapshot();
  }
  return HttpResponse(200, "OK", MetricsToPrometheusText(snapshot));
}

StatsServer::~StatsServer() { Stop(); }

Status StatsServer::Start(int port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("stats server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("stats server: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return Status::Internal("stats server: bind() failed on port " +
                            std::to_string(port) + ": " + detail);
  }
  if (::listen(fd, 4) < 0) {
    ::close(fd);
    return Status::Internal("stats server: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    return Status::Internal("stats server: getsockname() failed");
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::Ok();
}

void StatsServer::Serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;  // transient accept failure (EINTR and friends)
    }
    char buf[2048];
    const ssize_t n = ::recv(conn, buf, sizeof(buf) - 1, 0);
    if (n > 0) {
      buf[n] = '\0';
      std::string request(buf);
      const size_t eol = request.find("\r\n");
      SendAll(conn,
              StatsServerResponseFor(
                  eol == std::string::npos ? request : request.substr(0, eol)));
    }
    ::close(conn);
  }
}

void StatsServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() unblocks the accept(2) the serve thread is parked in;
  // close() alone is not guaranteed to.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = -1;
  running_.store(false, std::memory_order_release);
}

StatsServer& GlobalStatsServer() {
  static StatsServer server;
  return server;
}

Status StartStatsServerFromEnv() {
  const EnvConfig& env = ProcessEnv();
  if (env.stats_port < 0) return Status::Ok();
  StatsServer& server = GlobalStatsServer();
  if (server.running()) return Status::Ok();
  return server.Start(env.stats_port);
}

}  // namespace ppr
