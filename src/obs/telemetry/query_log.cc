#include "obs/telemetry/query_log.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <sstream>

#include "common/env.h"
#include "common/mutex.h"
#include "obs/exporters.h"
#include "obs/metrics.h"

namespace ppr {
namespace {

// SplitMix64-style finalizer: fingerprints are already hashes, but the
// shard/bucket selectors must not reuse the same low bits, so each
// selector remixes with its own salt.
uint64_t Remix(uint64_t h, uint64_t salt) {
  h ^= salt;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

const char* QuerySourceName(QuerySource source) {
  switch (source) {
    case QuerySource::kBatch:
      return "batch";
    case QuerySource::kMorsel:
      return "morsel";
    case QuerySource::kTool:
      return "tool";
    case QuerySource::kService:
      return "service";
  }
  return "?";
}

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kOk:
      return "ok";
    case QueryOutcome::kBudgetExhausted:
      return "budget_exhausted";
    case QueryOutcome::kFailed:
      return "failed";
  }
  return "?";
}

std::string QueryRecordToJson(const QueryRecord& record) {
  std::ostringstream out;
  char fp[32];
  std::snprintf(fp, sizeof(fp), "0x%016llx",
                static_cast<unsigned long long>(record.fingerprint));
  out << "{\"seq\":" << record.seq << ",\"fingerprint\":\"" << fp << "\""
      << ",\"strategy\":" << record.strategy << ",\"source\":\""
      << QuerySourceName(record.source) << "\""
      << ",\"cache_hit\":" << (record.cache_hit ? "true" : "false")
      << ",\"outcome\":\"" << QueryOutcomeName(record.outcome) << "\""
      << ",\"status_code\":" << record.status_code
      << ",\"wall_ns\":" << record.wall_ns
      << ",\"tuples_produced\":" << record.tuples_produced
      << ",\"output_rows\":" << record.output_rows
      << ",\"peak_bytes\":" << record.peak_bytes
      << ",\"max_arity\":" << record.max_arity
      << ",\"predicted_width\":" << record.predicted_width
      << ",\"bound_headroom\":" << record.bound_headroom << ",\"error\":";
  AppendJsonString(out, record.error);
  out << "}";
  return out.str();
}

void ClassifyStatus(const Status& status, QueryRecord* record) {
  record->status_code = static_cast<int32_t>(status.code());
  if (status.ok()) {
    record->outcome = QueryOutcome::kOk;
  } else if (status.code() == StatusCode::kResourceExhausted) {
    record->outcome = QueryOutcome::kBudgetExhausted;
  } else {
    record->outcome = QueryOutcome::kFailed;
    record->error = status.message();
  }
}

struct QueryLog::Shard {
  // kLockRankTelemetry: shard mutexes are acquired under GlobalObsMutex
  // (append/flush/clear), never the other way around.
  mutable Mutex mu{kLockRankTelemetry};
  /// Ring of records, slot = per-shard append index % shard capacity.
  std::vector<QueryRecord> ring GUARDED_BY(mu);
  uint64_t appended GUARDED_BY(mu) = 0;
  std::array<Log2Histogram, kLatencyBuckets> latency GUARDED_BY(mu){};
};

QueryLog::QueryLog(size_t capacity, int num_shards) {
  if (num_shards < 1) num_shards = 1;
  shard_capacity_ =
      std::max<size_t>(1, (capacity + static_cast<size_t>(num_shards) - 1) /
                              static_cast<size_t>(num_shards));
  capacity_ = shard_capacity_ * static_cast<size_t>(num_shards);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

QueryLog::~QueryLog() = default;

QueryLog::Shard& QueryLog::ShardFor(uint64_t fingerprint) const {
  return *shards_[Remix(fingerprint, 0xA5A5F00DULL) % shards_.size()];
}

uint64_t QueryLog::Append(const QueryRecord& record) {
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = ShardFor(record.fingerprint);
  MutexLock lock(shard.mu);
  QueryRecord stamped = record;
  stamped.seq = seq;
  if (shard.ring.size() < shard_capacity_) {
    shard.ring.push_back(std::move(stamped));
  } else {
    shard.ring[shard.appended % shard_capacity_] = std::move(stamped);
  }
  ++shard.appended;
  if (record.outcome == QueryOutcome::kOk) {
    const size_t bucket =
        Remix(record.fingerprint, 0x1A7E9C1E5ULL) % kLatencyBuckets;
    shard.latency[bucket].Record(static_cast<uint64_t>(
        std::max<int64_t>(0, record.wall_ns)));
  }
  return seq;
}

std::vector<QueryRecord> QueryLog::Snapshot() const {
  std::vector<QueryRecord> out;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    out.insert(out.end(), shard->ring.begin(), shard->ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string QueryLog::ToJsonl() const {
  std::ostringstream out;
  for (const QueryRecord& record : Snapshot()) {
    out << QueryRecordToJson(record) << "\n";
  }
  return out.str();
}

uint64_t QueryLog::MedianWallNs(uint64_t fingerprint) const {
  const Shard& shard = ShardFor(fingerprint);
  const size_t bucket =
      Remix(fingerprint, 0x1A7E9C1E5ULL) % kLatencyBuckets;
  MutexLock lock(shard.mu);
  return static_cast<uint64_t>(shard.latency[bucket].Quantile(0.5));
}

uint64_t QueryLog::LatencySamples(uint64_t fingerprint) const {
  const Shard& shard = ShardFor(fingerprint);
  const size_t bucket =
      Remix(fingerprint, 0x1A7E9C1E5ULL) % kLatencyBuckets;
  MutexLock lock(shard.mu);
  return shard.latency[bucket].count;
}

uint64_t QueryLog::total_appended() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->appended;
  }
  return total;
}

uint64_t QueryLog::dropped() const {
  uint64_t dropped = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    dropped += shard->appended - shard->ring.size();
  }
  return dropped;
}

void QueryLog::Clear() {
  seq_.store(0, std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->ring.clear();
    shard->appended = 0;
    shard->latency.fill(Log2Histogram{});
  }
}

namespace {

struct GlobalQueryLogState {
  /// The gate the runtime drains poll — atomic for the same reason as
  /// the trace gate (a programmatic toggle racing a reader must be a
  /// stale load, never a torn one).
  std::atomic<bool> enabled{false};
  std::string path GUARDED_BY(GlobalObsMutex());
  QueryLog log;  // internally synchronized

  GlobalQueryLogState() {
    const EnvConfig& env = ProcessEnv();
    // PPR_FLIGHT_DIR implies record collection: the flight recorder
    // cannot compute running medians without the log.
    if (!env.query_log_path.empty() || !env.flight_dir.empty()) {
      enabled.store(true, std::memory_order_relaxed);
      path = env.query_log_path;
    }
  }
};

GlobalQueryLogState& QueryLogState() {
  static GlobalQueryLogState state;
  return state;
}

}  // namespace

void EnableQueryLog(const std::string& path) {
  GlobalQueryLogState& state = QueryLogState();
  MutexLock lock(GlobalObsMutex());
  state.path = path;
  state.enabled.store(true, std::memory_order_release);
}

void DisableQueryLog() {
  GlobalQueryLogState& state = QueryLogState();
  MutexLock lock(GlobalObsMutex());
  state.enabled.store(false, std::memory_order_release);
  state.path.clear();
  state.log.Clear();
}

bool QueryLogEnabled() {
  return QueryLogState().enabled.load(std::memory_order_acquire);
}

QueryLog* GlobalQueryLogIfEnabled() {
  GlobalQueryLogState& state = QueryLogState();
  return state.enabled.load(std::memory_order_acquire) ? &state.log : nullptr;
}

const std::string& QueryLogPath() { return QueryLogState().path; }

Status FlushQueryLogArtifact() {
  GlobalQueryLogState& state = QueryLogState();
  if (!state.enabled.load(std::memory_order_acquire) || state.path.empty()) {
    return Status::Ok();
  }
  return WriteFileAtomicEnough(state.path, state.log.ToJsonl());
}

}  // namespace ppr
