#ifndef PPR_OBS_TELEMETRY_FLIGHT_RECORDER_H_
#define PPR_OBS_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "obs/telemetry/query_log.h"
#include "obs/trace.h"

namespace ppr {

/// What tripped a flight dump.
enum class FlightTrigger : uint8_t {
  /// The job exhausted its tuple budget (the deterministic timeout).
  kBudgetExhausted = 0,
  /// The job failed outright — structural-verifier or
  /// semantic-certification rejection, compile error, morsel-accounting
  /// failure (QueryOutcome::kFailed).
  kFailure = 1,
  /// The job's wall time exceeded `latency_multiple` times the running
  /// median of its fingerprint bucket.
  kLatencyOutlier = 2,
};
const char* FlightTriggerName(FlightTrigger trigger);

struct FlightRecorderOptions {
  /// Directory flight-<id>.json dumps land in (created on demand).
  /// Empty disables dumping — Observe still classifies, nothing hits
  /// disk (tests use this to exercise triggers hermetically).
  std::string dir;
  /// Latency trigger threshold: wall_ns > latency_multiple * median.
  double latency_multiple = 8.0;
  /// Latency trigger stays disarmed until the record's fingerprint
  /// bucket has at least this many OK samples — a cold median is noise.
  uint64_t min_latency_samples = 16;
  /// Trailing trace spans snapshotted into each dump.
  size_t max_spans = 64;
  /// Hard cap on dumps per recorder — a pathological workload must not
  /// fill the disk with flights.
  int64_t max_dumps = 256;
};

/// The anomaly flight recorder: watches the stream of query records at
/// the runtime drain points and, when a record trips a trigger, writes a
/// self-contained flight-<id>.json snapshot — the triggering record, the
/// trigger, the running median it was judged against, and the last-N
/// trace spans — so the evidence for "predicted structure bounds
/// diverged from observed cost" survives the run instead of being
/// thrown away.
///
/// Threading: internally synchronized (a single annotated mutex guards
/// the dump counter and id sequence); callers at the drain points
/// already hold GlobalObsMutex(), which orders observations the same
/// way the log appends are ordered.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Evaluates the triggers for `record` (medians come from `log`, which
  /// must already contain the record) and dumps a flight file when one
  /// fires and the dump budget allows. `spans`, when non-null, supplies
  /// the trace ring to snapshot (the global sink at batch drains, the
  /// run's private sink at morsel drains). Returns the fired trigger,
  /// dumped or not.
  std::optional<FlightTrigger> Observe(const QueryRecord& record,
                                       const QueryLog& log,
                                       const TraceSink* spans);

  /// Renders the dump document for a trigger (exposed for tests and for
  /// pprstat's validation of dump structure).
  std::string RenderFlight(int64_t flight_id, FlightTrigger trigger,
                           const QueryRecord& record, uint64_t median_wall_ns,
                           const std::vector<TraceSpan>& spans) const;

  int64_t dumps() const;
  std::string last_dump_path() const;
  const FlightRecorderOptions& options() const { return options_; }

 private:
  const FlightRecorderOptions options_;
  // kLockRankTelemetry: Observe() runs under GlobalObsMutex and takes
  // mu_ inside it (canonical order in common/mutex.h).
  mutable Mutex mu_{kLockRankTelemetry};
  int64_t next_id_ GUARDED_BY(mu_) = 0;
  int64_t dumps_ GUARDED_BY(mu_) = 0;
  std::string last_dump_path_ GUARDED_BY(mu_);
};

/// Process-wide recorder, gated like the query log: starts enabled when
/// the environment sets PPR_FLIGHT_DIR (with PPR_FLIGHT_LATENCY_MULT /
/// PPR_FLIGHT_SPANS overriding the defaults); toggled programmatically
/// by EnableFlightRecorder/DisableFlightRecorder.
void EnableFlightRecorder(FlightRecorderOptions options)
    EXCLUDES(GlobalObsMutex());
void DisableFlightRecorder() EXCLUDES(GlobalObsMutex());
bool FlightRecorderEnabled();

/// The global recorder when enabled, nullptr otherwise. The recorder
/// binding is guarded by GlobalObsMutex() (Enable/Disable rebind it), and
/// the drain points that call Observe already hold it — hence REQUIRES
/// rather than an internal lock.
FlightRecorder* GlobalFlightRecorderIfEnabled() REQUIRES(GlobalObsMutex());

}  // namespace ppr

#endif  // PPR_OBS_TELEMETRY_FLIGHT_RECORDER_H_
