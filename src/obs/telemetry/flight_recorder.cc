#include "obs/telemetry/flight_recorder.h"

#include <atomic>
#include <filesystem>
#include <memory>
#include <sstream>

#include "common/env.h"
#include "obs/exporters.h"

namespace ppr {
namespace {

void AppendSpanJson(std::ostringstream& out, const TraceSpan& s) {
  out << "{\"op\":\"" << TraceOpName(s.op) << "\",\"node\":" << s.node_id
      << ",\"start_ns\":" << s.start_ns << ",\"duration_ns\":" << s.duration_ns
      << ",\"rows_in\":" << s.rows_in << ",\"rows_out\":" << s.rows_out
      << ",\"arity_in\":" << s.arity_in << ",\"arity_out\":" << s.arity_out
      << ",\"bytes\":" << s.bytes << ",\"ht_build_rows\":" << s.ht_build_rows
      << ",\"ht_probe_ops\":" << s.ht_probe_ops
      << ",\"morsel\":" << s.morsel_id << ",\"batches\":" << s.batches << "}";
}

}  // namespace

const char* FlightTriggerName(FlightTrigger trigger) {
  switch (trigger) {
    case FlightTrigger::kBudgetExhausted:
      return "budget_exhausted";
    case FlightTrigger::kFailure:
      return "failure";
    case FlightTrigger::kLatencyOutlier:
      return "latency_outlier";
  }
  return "?";
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)) {}

std::string FlightRecorder::RenderFlight(
    int64_t flight_id, FlightTrigger trigger, const QueryRecord& record,
    uint64_t median_wall_ns, const std::vector<TraceSpan>& spans) const {
  std::ostringstream out;
  out << "{\"flight\":" << flight_id << ",\"trigger\":\""
      << FlightTriggerName(trigger) << "\""
      << ",\"median_wall_ns\":" << median_wall_ns
      << ",\"latency_multiple\":" << options_.latency_multiple
      << ",\"record\":" << QueryRecordToJson(record) << ",\"spans\":[";
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out << ",";
    first = false;
    out << "\n";
    AppendSpanJson(out, s);
  }
  out << "\n]}\n";
  return out.str();
}

std::optional<FlightTrigger> FlightRecorder::Observe(const QueryRecord& record,
                                                     const QueryLog& log,
                                                     const TraceSink* spans) {
  std::optional<FlightTrigger> trigger;
  uint64_t median = 0;
  switch (record.outcome) {
    case QueryOutcome::kBudgetExhausted:
      trigger = FlightTrigger::kBudgetExhausted;
      break;
    case QueryOutcome::kFailed:
      trigger = FlightTrigger::kFailure;
      break;
    case QueryOutcome::kOk: {
      median = log.MedianWallNs(record.fingerprint);
      const uint64_t samples = log.LatencySamples(record.fingerprint);
      if (samples >= options_.min_latency_samples && median > 0 &&
          static_cast<double>(record.wall_ns) >
              options_.latency_multiple * static_cast<double>(median)) {
        trigger = FlightTrigger::kLatencyOutlier;
      }
      break;
    }
  }
  if (!trigger.has_value()) return std::nullopt;
  if (record.outcome == QueryOutcome::kOk && median == 0) {
    median = log.MedianWallNs(record.fingerprint);
  }

  int64_t flight_id;
  {
    MutexLock lock(mu_);
    flight_id = next_id_++;
    if (options_.dir.empty() || dumps_ >= options_.max_dumps) {
      return trigger;  // classified, dump budget spent (or disk disabled)
    }
    ++dumps_;
  }

  std::vector<TraceSpan> tail;
  if (spans != nullptr) {
    const uint64_t total = spans->total_recorded();
    const uint64_t from =
        total > options_.max_spans ? total - options_.max_spans : 0;
    tail = spans->SnapshotSince(from);
  }
  const std::string doc =
      RenderFlight(flight_id, *trigger, record, median, tail);

  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  const std::string path =
      options_.dir + "/flight-" + std::to_string(flight_id) + ".json";
  if (WriteFileAtomicEnough(path, doc).ok()) {
    MutexLock lock(mu_);
    last_dump_path_ = path;
  }
  return trigger;
}

int64_t FlightRecorder::dumps() const {
  MutexLock lock(mu_);
  return dumps_;
}

std::string FlightRecorder::last_dump_path() const {
  MutexLock lock(mu_);
  return last_dump_path_;
}

namespace {

struct GlobalFlightState {
  std::atomic<bool> enabled{false};
  std::unique_ptr<FlightRecorder> recorder GUARDED_BY(GlobalObsMutex());

  GlobalFlightState() {
    const EnvConfig& env = ProcessEnv();
    if (!env.flight_dir.empty()) {
      FlightRecorderOptions options;
      options.dir = env.flight_dir;
      options.latency_multiple = env.flight_latency_mult;
      options.max_spans = static_cast<size_t>(env.flight_spans);
      recorder = std::make_unique<FlightRecorder>(std::move(options));
      enabled.store(true, std::memory_order_relaxed);
    }
  }
};

GlobalFlightState& FlightState() {
  static GlobalFlightState state;
  return state;
}

}  // namespace

void EnableFlightRecorder(FlightRecorderOptions options) {
  GlobalFlightState& state = FlightState();
  MutexLock lock(GlobalObsMutex());
  state.recorder = std::make_unique<FlightRecorder>(std::move(options));
  state.enabled.store(true, std::memory_order_release);
}

void DisableFlightRecorder() {
  GlobalFlightState& state = FlightState();
  MutexLock lock(GlobalObsMutex());
  state.enabled.store(false, std::memory_order_release);
  state.recorder.reset();
}

bool FlightRecorderEnabled() {
  return FlightState().enabled.load(std::memory_order_acquire);
}

FlightRecorder* GlobalFlightRecorderIfEnabled() {
  GlobalFlightState& state = FlightState();
  if (!state.enabled.load(std::memory_order_acquire)) return nullptr;
  return state.recorder.get();
}

}  // namespace ppr
