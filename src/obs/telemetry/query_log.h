#ifndef PPR_OBS_TELEMETRY_QUERY_LOG_H_
#define PPR_OBS_TELEMETRY_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "obs/obs_lock.h"

namespace ppr {

/// Which drain point produced a query record.
enum class QuerySource : uint8_t {
  kBatch = 0,    // BatchExecutor::Run (inter-query parallelism)
  kMorsel = 1,   // MorselDriver::Run (intra-query parallelism)
  kTool = 2,     // examples/tools recording runs by hand
  kService = 3,  // QueryService (the resident daemon, one record/request)
};
const char* QuerySourceName(QuerySource source);

/// Terminal outcome of one (query, strategy) job.
enum class QueryOutcome : uint8_t {
  kOk = 0,
  /// Tuple budget exhausted (the deterministic timeout,
  /// StatusCode::kResourceExhausted).
  kBudgetExhausted = 1,
  /// Any other non-OK status: compile errors, structural-verifier and
  /// semantic-certification rejections, morsel-accounting failures. The
  /// record's status_code/error carry the specifics.
  kFailed = 2,
};
const char* QueryOutcomeName(QueryOutcome outcome);

/// One structured record per executed (query, strategy) job — the unit
/// the ROADMAP's adaptive-selection item keys its steering decisions on.
/// Serialized field-for-field by QueryRecordToJson (tools/pprlint's
/// telemetry-sync rule keeps the two in lockstep).
struct QueryRecord {
  /// Global append order, assigned by QueryLog::Append (0 before then).
  uint64_t seq = 0;
  /// Hash of the job's WL-canonical structure bytes
  /// (CanonicalQuery::structure, runtime/plan_cache.h) — the succinct
  /// structural key optimization decisions should be driven by. 0 when
  /// the job ran uncanonicalized (plan cache off, no query context).
  uint64_t fingerprint = 0;
  /// StrategyKind ordinal (benchlib/harness.h); -1 when unknown (the
  /// morsel driver executes pre-built plans).
  int32_t strategy = -1;
  QuerySource source = QuerySource::kBatch;
  /// Whether this job reused a cached compiled plan. Attributed
  /// deterministically at drain: among a batch's jobs sharing a key that
  /// was not already cached, the first in *input order* is the miss —
  /// so the log is byte-identical across worker counts even though
  /// "who actually compiled" depends on scheduling.
  bool cache_hit = false;
  QueryOutcome outcome = QueryOutcome::kOk;
  /// StatusCode ordinal of the job's final status.
  int32_t status_code = 0;
  /// Wall-clock execution time. The only nondeterministic field; the
  /// cross-worker-count byte-identity contract is stated modulo wall_ns.
  int64_t wall_ns = 0;
  int64_t tuples_produced = 0;
  /// Rows in the answer relation; -1 when the job produced no output
  /// (compile error).
  int64_t output_rows = -1;
  /// Largest single-operator footprint (ExecStats::peak_bytes).
  int64_t peak_bytes = 0;
  /// Widest operator output actually reached (ExecStats arity).
  int32_t max_arity = 0;
  /// Static join width the planner promised (Plan::Width()); -1 unknown.
  int32_t predicted_width = -1;
  /// predicted_width - max_arity: how much headroom the static bound had
  /// over the observed width. Negative means the bound was violated —
  /// exactly the predicted-vs-actual divergence evidence the obs layer
  /// used to throw away. 0 when predicted_width is unknown.
  int32_t bound_headroom = 0;
  /// Status message for kFailed outcomes ("" otherwise).
  std::string error;
};

/// One line of JSON, no trailing newline. Field names match the struct
/// member names exactly (enforced by pprlint's telemetry-sync rule);
/// fingerprint renders as a hex string so 64-bit values survive JSON
/// readers that parse numbers as doubles.
std::string QueryRecordToJson(const QueryRecord& record);

/// Derives outcome/status_code/error from a job's final status.
void ClassifyStatus(const Status& status, QueryRecord* record);

/// Fixed-capacity, mutex-sharded log of query records — the third obs
/// pillar beside the trace ring and the metrics registry. Appends hash
/// the record's fingerprint to a shard, take that shard's lock only, and
/// never allocate once the shard ring is full (the oldest record is
/// overwritten and counted as dropped). Each shard additionally folds
/// OK records' wall_ns into per-fingerprint-bucket Log2Histograms, so
/// the flight recorder can ask for a running fingerprint-bucketed median
/// without scanning the ring.
///
/// Threading contract: fully internally synchronized — any thread may
/// Append/Snapshot concurrently (the tsan hammer test exercises
/// exactly that). Determinism of the *contents* is the caller's job:
/// the runtime drains append from a single thread in input order, which
/// is what makes the exported JSONL byte-identical across worker counts
/// (modulo wall_ns).
class QueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 8192;
  static constexpr int kDefaultShards = 8;
  /// Fingerprints hash onto this many latency buckets per shard, so
  /// median bookkeeping is O(1) memory regardless of workload variety.
  static constexpr int kLatencyBuckets = 64;

  explicit QueryLog(size_t capacity = kDefaultCapacity,
                    int num_shards = kDefaultShards);
  ~QueryLog();

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Appends a copy of `record` with the next global sequence number
  /// stamped in; returns that sequence number. OK records also record
  /// wall_ns into their fingerprint's latency bucket.
  uint64_t Append(const QueryRecord& record);

  /// Buffered records across all shards, in sequence order.
  std::vector<QueryRecord> Snapshot() const;

  /// Snapshot rendered as JSONL (one QueryRecordToJson line per record).
  std::string ToJsonl() const;

  /// Running median wall-ns of `fingerprint`'s latency bucket; 0 when
  /// the bucket is empty.
  uint64_t MedianWallNs(uint64_t fingerprint) const;

  /// OK-record observations folded into `fingerprint`'s latency bucket
  /// so far (the flight recorder arms its latency trigger only past a
  /// minimum sample count).
  uint64_t LatencySamples(uint64_t fingerprint) const;

  uint64_t total_appended() const;
  /// Records overwritten before any snapshot saw them.
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

  /// Drops all buffered records, latency buckets, and the sequence
  /// counter (tests and tools; not used on live paths).
  void Clear();

 private:
  struct Shard;
  Shard& ShardFor(uint64_t fingerprint) const;

  size_t capacity_;        // total across shards
  size_t shard_capacity_;  // per shard
  /// Log-wide append order. Per log (not per shard) so snapshots
  /// re-serialize in true append order, and per log (not process-wide)
  /// so a cleared log restarts at 1 — which is what keeps exported seq
  /// numbers deterministic run over run.
  std::atomic<uint64_t> seq_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Process-wide query log, gated like tracing (obs/trace.h): starts
/// enabled when the environment sets PPR_QUERY_LOG (JSONL export to that
/// path) or PPR_FLIGHT_DIR (in-memory only — the flight recorder needs
/// the records and medians even when nobody asked for the JSONL file).
/// EnableQueryLog/DisableQueryLog toggle programmatically; the enabled
/// gate is an atomic, the path swaps under GlobalObsMutex().
void EnableQueryLog(const std::string& path) EXCLUDES(GlobalObsMutex());
void DisableQueryLog() EXCLUDES(GlobalObsMutex());
bool QueryLogEnabled();

/// The global log when enabled, nullptr otherwise — the null return is
/// the single branch the telemetry-disabled path costs per job.
QueryLog* GlobalQueryLogIfEnabled();

/// JSONL export target ("" = in-memory only). Guarded by
/// GlobalObsMutex() (EnableQueryLog rebinds it).
const std::string& QueryLogPath() REQUIRES(GlobalObsMutex());

/// Rewrites the JSONL artifact at QueryLogPath() from the global log.
/// No-op (OK) when the log is disabled or has no path. Called by the
/// runtime drains after appending a batch's records, so the file always
/// reflects everything logged so far (the FlushTraceArtifacts pattern).
Status FlushQueryLogArtifact() REQUIRES(GlobalObsMutex());

}  // namespace ppr

#endif  // PPR_OBS_TELEMETRY_QUERY_LOG_H_
