#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace ppr {
namespace {

int64_t Lookup(const std::map<std::string, int64_t, std::less<>>& m,
               std::string_view name) {
  auto it = m.find(name);
  return it == m.end() ? 0 : it->second;
}

void AppendHistogramJson(std::ostringstream& out, const std::string& name,
                         const Log2Histogram& h) {
  out << "{\"metric\":\"" << name << "\",\"type\":\"log2_histogram\""
      << ",\"count\":" << h.count << ",\"sum\":" << h.sum
      << ",\"max\":" << h.max << ",\"mean\":" << h.Mean()
      << ",\"p50\":" << h.Quantile(0.50) << ",\"p90\":" << h.Quantile(0.90)
      << ",\"p99\":" << h.Quantile(0.99) << ",\"buckets\":[";
  bool first = true;
  for (int b = 0; b < Log2Histogram::kNumBuckets; ++b) {
    const uint64_t n = h.buckets[static_cast<size_t>(b)];
    if (n == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "[" << Log2Histogram::BucketUpperBound(b) << "," << n << "]";
  }
  out << "]}\n";
}

}  // namespace

double Log2Histogram::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Continuous rank in (0, count]; the value sought is the rank-th
  // smallest observation (rank 0 degenerates to the smallest).
  const double rank = q * static_cast<double>(count);
  uint64_t below = 0;  // observations in buckets before the current one
  for (int b = 0; b < kNumBuckets; ++b) {
    const uint64_t n = buckets[static_cast<size_t>(b)];
    if (n == 0) continue;
    if (static_cast<double>(below + n) >= rank) {
      const double lower =
          b == 0 ? 0.0 : static_cast<double>(BucketUpperBound(b - 1)) + 1.0;
      double upper = static_cast<double>(BucketUpperBound(b));
      // The recorded maximum pins down the reachable top of its bucket
      // (and of every later, necessarily empty, one).
      upper = std::min(upper, static_cast<double>(max));
      if (upper < lower) return static_cast<double>(max);
      const double fraction =
          n == 0 ? 0.0
                 : std::max(0.0, rank - static_cast<double>(below)) /
                       static_cast<double>(n);
      return lower + (upper - lower) * std::min(1.0, fraction);
    }
    below += n;
  }
  return static_cast<double>(max);
}

int64_t MetricsSnapshot::counter(std::string_view name) const {
  return Lookup(counters, name);
}

int64_t MetricsSnapshot::max_value(std::string_view name) const {
  return Lookup(maxes, name);
}

const Log2Histogram* MetricsSnapshot::histogram(std::string_view name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

MetricsSnapshot DeltaSince(const MetricsSnapshot& before,
                           const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    delta.counters[name] = value - before.counter(name);
  }
  delta.maxes = after.maxes;
  for (const auto& [name, hist] : after.histograms) {
    Log2Histogram d = hist;
    if (const Log2Histogram* b = before.histogram(name)) {
      for (size_t i = 0; i < d.buckets.size(); ++i) {
        d.buckets[i] -= b->buckets[i];
      }
      d.count -= b->count;
      d.sum -= b->sum;
    }
    delta.histograms[name] = d;
  }
  return delta;
}

void MetricsRegistry::AddCounter(std::string_view name, int64_t delta) {
  PPR_DCHECK(delta >= 0);
  auto it = data_.counters.find(name);
  if (it == data_.counters.end()) {
    data_.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::RaiseMax(std::string_view name, int64_t value) {
  auto it = data_.maxes.find(name);
  if (it == data_.maxes.end()) {
    data_.maxes.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

void MetricsRegistry::RecordHistogram(std::string_view name, uint64_t value) {
  auto it = data_.histograms.find(name);
  if (it == data_.histograms.end()) {
    it = data_.histograms.emplace(std::string(name), Log2Histogram{}).first;
  }
  it->second.Record(value);
}

void MetricsRegistry::Merge(const MetricsSnapshot& shard) {
  for (const auto& [name, value] : shard.counters) {
    AddCounter(name, value);
  }
  for (const auto& [name, value] : shard.maxes) {
    RaiseMax(name, value);
  }
  for (const auto& [name, hist] : shard.histograms) {
    auto it = data_.histograms.find(name);
    if (it == data_.histograms.end()) {
      data_.histograms.emplace(name, hist);
    } else {
      it->second.Merge(hist);
    }
  }
}

int64_t MetricsRegistry::counter(std::string_view name) const {
  return data_.counter(name);
}

int64_t MetricsRegistry::max_value(std::string_view name) const {
  return data_.max_value(name);
}

const Log2Histogram* MetricsRegistry::histogram(std::string_view name) const {
  return data_.histogram(name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const { return data_; }

void MetricsRegistry::Clear() { data_ = MetricsSnapshot{}; }

std::string MetricsRegistry::ToJsonLines() const {
  return MetricsToJsonLines(data_);
}

Mutex& GlobalObsMutex() {
  // kLockRankObs: above every app/service mutex, below the telemetry
  // internals it guards access to (canonical order in common/mutex.h).
  static Mutex mu(kLockRankObs);
  return mu;
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry registry;
  return registry;
}

std::string MetricsToJsonLines(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    out << "{\"metric\":\"" << name << "\",\"type\":\"counter\",\"value\":"
        << value << "}\n";
  }
  for (const auto& [name, value] : snapshot.maxes) {
    out << "{\"metric\":\"" << name << "\",\"type\":\"max\",\"value\":"
        << value << "}\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    AppendHistogramJson(out, name, hist);
  }
  return out.str();
}

}  // namespace ppr
