#ifndef PPR_OBS_EXPORTERS_H_
#define PPR_OBS_EXPORTERS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppr {

/// Renders spans as a Chrome trace_event JSON document (complete "X"
/// events, microsecond timestamps): load the file in chrome://tracing or
/// https://ui.perfetto.dev to see the per-operator timeline. Span data
/// fields (rows, arity, bytes, hash-table counters, plan node) appear as
/// event args.
std::string SpansToChromeTrace(const std::vector<TraceSpan>& spans);

/// Writes `content` to `path`, replacing the file.
Status WriteFileAtomicEnough(const std::string& path,
                             const std::string& content);

/// Publishes one run's spans into `registry` as the standard
/// per-operator histograms: op.rows_out, op.ns, op.bytes, plus the
/// per-kind time histograms op.<kind>.ns.
void PublishSpanMetrics(const std::vector<TraceSpan>& spans,
                        MetricsRegistry* registry);

/// Rewrites the global trace artifacts from the global sink and registry:
/// the Chrome trace at TracePath() and the metrics JSONL at
/// TracePath() + ".metrics.jsonl". No-op (OK) when tracing is disabled.
/// Called by the execution layer after every traced run, so the files are
/// always consistent with everything traced so far. Reads the global
/// sink and registry, so the caller holds the obs capability.
Status FlushTraceArtifacts() REQUIRES(GlobalObsMutex());

}  // namespace ppr

#endif  // PPR_OBS_EXPORTERS_H_
