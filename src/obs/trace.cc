#include "obs/trace.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/env.h"

namespace ppr {
namespace {

struct GlobalTraceState {
  /// The gate operators poll. Atomic so a programmatic toggle racing a
  /// reader is a defined (if momentarily stale) load, not a torn one.
  std::atomic<bool> enabled{false};
  std::string path GUARDED_BY(GlobalObsMutex());
  /// Not GUARDED_BY: the traced single-threaded Execute path records
  /// into it lock-free (see GlobalTraceSinkIfEnabled in trace.h);
  /// drain-side mutation goes through MergeIntoGlobalSink/DisableTracing
  /// which hold GlobalObsMutex().
  TraceSink sink;

  // Seeded from the once-read ProcessEnv() snapshot (common/env.h)
  // instead of a getenv call here, so enabling state can be derived on a
  // worker thread without ever touching the environment. Constructor
  // accesses predate any sharing, so the guarded `path` write is safe.
  GlobalTraceState() {
    const EnvConfig& env = ProcessEnv();
    enabled.store(env.trace_enabled, std::memory_order_relaxed);
    path = env.trace_path;
  }
};

GlobalTraceState& TraceState() {
  static GlobalTraceState state;
  return state;
}

}  // namespace

const char* TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kScan:
      return "scan";
    case TraceOp::kJoin:
      return "join";
    case TraceOp::kProject:
      return "project";
    case TraceOp::kSemiJoin:
      return "semijoin";
  }
  return "?";
}

TraceSink::TraceSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
  buffer_.reserve(std::min(capacity_, size_t{1024}));
}

void TraceSink::Record(const TraceSpan& span) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(span);
  } else {
    buffer_[total_ % capacity_] = span;
  }
  ++total_;
}

std::vector<TraceSpan> TraceSink::Snapshot() const {
  return SnapshotSince(0);
}

std::vector<TraceSpan> TraceSink::SnapshotSince(uint64_t seq) const {
  // Buffered spans carry sequence numbers [total_ - size, total_); when
  // the buffer wrapped, slot total_ % capacity_ holds the oldest.
  const uint64_t oldest = total_ - buffer_.size();
  const uint64_t from = std::max(seq, oldest);
  std::vector<TraceSpan> out;
  if (from >= total_) return out;
  out.reserve(static_cast<size_t>(total_ - from));
  for (uint64_t s = from; s < total_; ++s) {
    out.push_back(buffer_[s % capacity_]);
  }
  return out;
}

void TraceSink::Merge(const TraceSink& other) {
  const int64_t offset =
      std::chrono::duration_cast<std::chrono::nanoseconds>(other.epoch_ -
                                                           epoch_)
          .count();
  for (TraceSpan span : other.SnapshotSince(0)) {
    span.start_ns += offset;
    Record(span);
  }
}

void TraceSink::Clear() {
  buffer_.clear();
  total_ = 0;
}

void EnableTracing(const std::string& path) {
  PPR_CHECK(!path.empty());
  GlobalTraceState& state = TraceState();
  MutexLock lock(GlobalObsMutex());
  state.path = path;
  state.enabled.store(true, std::memory_order_release);
}

void DisableTracing() {
  GlobalTraceState& state = TraceState();
  MutexLock lock(GlobalObsMutex());
  state.enabled.store(false, std::memory_order_release);
  state.path.clear();
  state.sink.Clear();
}

bool TracingEnabled() {
  return TraceState().enabled.load(std::memory_order_acquire);
}

const std::string& TracePath() { return TraceState().path; }

TraceSink* GlobalTraceSinkIfEnabled() {
  GlobalTraceState& state = TraceState();
  return state.enabled.load(std::memory_order_acquire) ? &state.sink
                                                       : nullptr;
}

void MergeIntoGlobalSink(const TraceSink& shard) {
  TraceState().sink.Merge(shard);
}

}  // namespace ppr
