#include "encode/reference.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace ppr {
namespace {

// Recursive coloring over vertices in descending-degree order (a standard
// fail-first heuristic; keeps the oracle fast on the paper's instances).
bool ColorRec(const Graph& g, const std::vector<int>& order, size_t pos, int k,
              std::vector<int>& color) {
  if (pos == order.size()) return true;
  const int v = order[pos];
  for (int c = 1; c <= k; ++c) {
    bool ok = true;
    for (int u : g.Neighbors(v)) {
      if (color[static_cast<size_t>(u)] == c) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    color[static_cast<size_t>(v)] = c;
    if (ColorRec(g, order, pos + 1, k, color)) return true;
    color[static_cast<size_t>(v)] = 0;
  }
  return false;
}

enum class PropagationResult { kOk, kConflict };

// Assigns lit.var so that lit is true, then propagates units.
PropagationResult Propagate(const Cnf& cnf, std::vector<int>& assignment,
                            std::vector<int>& trail, int var, int value) {
  std::vector<std::pair<int, int>> pending = {{var, value}};
  while (!pending.empty()) {
    auto [v, val] = pending.back();
    pending.pop_back();
    if (assignment[static_cast<size_t>(v)] != -1) {
      if (assignment[static_cast<size_t>(v)] != val) {
        return PropagationResult::kConflict;
      }
      continue;
    }
    assignment[static_cast<size_t>(v)] = val;
    trail.push_back(v);
    // Scan clauses for conflicts and new units (no watched literals; the
    // oracle only runs on small formulas).
    for (const auto& clause : cnf.clauses) {
      int unassigned = 0;
      const Literal* unit = nullptr;
      bool satisfied = false;
      for (const Literal& lit : clause) {
        const int a = assignment[static_cast<size_t>(lit.var)];
        if (a == -1) {
          ++unassigned;
          unit = &lit;
        } else if ((a == 1) != lit.negated) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (unassigned == 0) return PropagationResult::kConflict;
      if (unassigned == 1) {
        pending.emplace_back(unit->var, unit->negated ? 0 : 1);
      }
    }
  }
  return PropagationResult::kOk;
}

bool DpllRec(const Cnf& cnf, std::vector<int>& assignment) {
  // Pick an unassigned variable occurring in an unsatisfied clause.
  int pick = -1;
  for (const auto& clause : cnf.clauses) {
    bool satisfied = false;
    int candidate = -1;
    for (const Literal& lit : clause) {
      const int a = assignment[static_cast<size_t>(lit.var)];
      if (a == -1) {
        candidate = lit.var;
      } else if ((a == 1) != lit.negated) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied && candidate != -1) {
      pick = candidate;
      break;
    }
    if (!satisfied && candidate == -1) return false;  // falsified clause
  }
  if (pick == -1) return true;  // all clauses satisfied

  for (int val : {1, 0}) {
    std::vector<int> trail;
    if (Propagate(cnf, assignment, trail, pick, val) ==
            PropagationResult::kOk &&
        DpllRec(cnf, assignment)) {
      return true;
    }
    for (int v : trail) assignment[static_cast<size_t>(v)] = -1;
  }
  return false;
}

}  // namespace

bool IsKColorable(const Graph& g, int k) {
  PPR_CHECK(k >= 1);
  const int n = g.num_vertices();
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return g.Degree(a) > g.Degree(b); });
  std::vector<int> color(static_cast<size_t>(n), 0);
  return ColorRec(g, order, 0, k, color);
}

bool IsSatisfiable(const Cnf& cnf) {
  std::vector<int> assignment(static_cast<size_t>(cnf.num_vars), -1);
  return DpllRec(cnf, assignment);
}

}  // namespace ppr
