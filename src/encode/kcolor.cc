#include "encode/kcolor.h"

#include <algorithm>

#include "common/check.h"

namespace ppr {

Relation ColoringEdgeRelation(int num_colors) {
  PPR_CHECK(num_colors >= 1);
  // Column attribute ids are placeholders; BindAtom rebinds them per atom.
  Relation rel{Schema({0, 1})};
  for (Value c1 = 1; c1 <= num_colors; ++c1) {
    for (Value c2 = 1; c2 <= num_colors; ++c2) {
      if (c1 != c2) rel.AddTuple({c1, c2});
    }
  }
  return rel;
}

void AddColoringRelations(int num_colors, Database* db) {
  db->Put(kEdgeRelationName, ColoringEdgeRelation(num_colors));
}

namespace {

std::vector<Atom> EdgeAtoms(const Graph& g) {
  std::vector<Atom> atoms;
  atoms.reserve(static_cast<size_t>(g.num_edges()));
  // Atoms in insertion order: generation order for random instances,
  // natural construction order for structured ones (Section 2/6.1 — the
  // straightforward method evaluates in the listed order).
  for (const auto& [u, v] : g.EdgesInInsertionOrder()) {
    atoms.push_back(Atom{kEdgeRelationName, {u, v}});
  }
  return atoms;
}

}  // namespace

ConjunctiveQuery KColorQuery(const Graph& g) {
  std::vector<Atom> atoms = EdgeAtoms(g);
  PPR_CHECK(!atoms.empty());
  // Boolean emulation as in the paper's SQL: select the first vertex that
  // occurs in an edge.
  const AttrId first_vertex = atoms.front().args.front();
  return ConjunctiveQuery(std::move(atoms), {first_vertex});
}

ConjunctiveQuery KColorQueryNonBoolean(const Graph& g, double free_fraction,
                                       Rng& rng) {
  std::vector<Atom> atoms = EdgeAtoms(g);
  PPR_CHECK(!atoms.empty());
  PPR_CHECK(free_fraction > 0.0 && free_fraction <= 1.0);

  // Only vertices that occur in some edge can be free (isolated vertices
  // do not appear in the query at all).
  std::vector<AttrId> candidates;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (g.Degree(v) > 0) candidates.push_back(v);
  }
  int num_free = static_cast<int>(free_fraction *
                                  static_cast<double>(candidates.size()));
  num_free = std::max(num_free, 1);
  rng.Shuffle(candidates);
  std::vector<AttrId> free_vars(candidates.begin(),
                                candidates.begin() + num_free);
  std::sort(free_vars.begin(), free_vars.end());
  return ConjunctiveQuery(std::move(atoms), std::move(free_vars));
}

ConjunctiveQuery PentagonQuery() {
  std::vector<Atom> atoms = {
      Atom{kEdgeRelationName, {0, 1}},  // edge(v1, v2)
      Atom{kEdgeRelationName, {0, 4}},  // edge(v1, v5)
      Atom{kEdgeRelationName, {3, 4}},  // edge(v4, v5)
      Atom{kEdgeRelationName, {2, 3}},  // edge(v3, v4)
      Atom{kEdgeRelationName, {1, 2}},  // edge(v2, v3)
  };
  return ConjunctiveQuery(std::move(atoms), {0});
}

}  // namespace ppr
