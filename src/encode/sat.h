#ifndef PPR_ENCODE_SAT_H_
#define PPR_ENCODE_SAT_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"

namespace ppr {

/// A propositional literal over 0-based variable ids.
struct Literal {
  int var = 0;
  bool negated = false;
};

/// A CNF formula. Clauses are literal lists; the generators below produce
/// clauses with distinct variables (required by the query encoding, which
/// binds one attribute per clause position).
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<Literal>> clauses;

  int num_clauses() const { return static_cast<int>(clauses.size()); }

  /// Clause density m/n, the x-axis of Fig. 2.
  double Density() const {
    return num_vars == 0 ? 0.0
                         : static_cast<double>(clauses.size()) / num_vars;
  }

  /// Renders "(x0 | !x1 | x2) & ...".
  std::string ToString() const;
};

/// Uniform random k-SAT: each clause picks k distinct variables uniformly
/// and negates each independently with probability 1/2. Duplicate clauses
/// are allowed (as in the standard fixed-clause-length model).
Cnf RandomKSat(int num_vars, int num_clauses, int k, Rng& rng);

/// Name of the stored relation for a k-literal clause whose negation
/// pattern is `mask` (bit i set = position i negated): e.g. "sat3_5".
std::string SatRelationName(int k, unsigned mask);

/// Stores the 2^k clause relations for width-k clauses in `db`: relation
/// for `mask` holds the 2^k - 1 satisfying assignments (domain {0,1}) —
/// everything except the single all-literals-false row.
void AddSatRelations(int k, Database* db);

/// Translates a CNF into a project-join query: one atom per clause over
/// the relation matching its sign pattern; variable i becomes attribute i.
/// Boolean emulation selects the first variable of the first clause.
/// The query result is nonempty iff the CNF is satisfiable (Section 7:
/// "we have also tested our algorithms on queries constructed from 3-SAT
/// and 2-SAT").
ConjunctiveQuery SatQuery(const Cnf& cnf);

/// Non-Boolean variant: `free_fraction` of the used variables (at least 1)
/// become free, chosen uniformly at random.
ConjunctiveQuery SatQueryNonBoolean(const Cnf& cnf, double free_fraction,
                                    Rng& rng);

}  // namespace ppr

#endif  // PPR_ENCODE_SAT_H_
