#ifndef PPR_ENCODE_KCOLOR_H_
#define PPR_ENCODE_KCOLOR_H_

#include "common/rng.h"
#include "graph/graph.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"
#include "relational/relation.h"

namespace ppr {

/// Name under which the coloring edge relation is stored.
inline constexpr char kEdgeRelationName[] = "edge";

/// The binary `edge` relation of Section 2: all ordered pairs of *distinct*
/// colors from {1..num_colors}. For 3-COLOR this is the single 6-tuple
/// relation the whole evaluation runs against.
Relation ColoringEdgeRelation(int num_colors);

/// Stores ColoringEdgeRelation(num_colors) in `db` under "edge".
void AddColoringRelations(int num_colors, Database* db);

/// Translates a k-COLOR instance into the Boolean project-join query
///     pi_{v1} |><|_{(vi,vj) in E} edge(vi, vj)
/// of Section 2. Graph vertex i becomes attribute i; each graph edge
/// (u, v), u < v, becomes one atom edge(u, v), listed in lexicographic
/// order. Following the paper's SQL emulation of Boolean queries, the
/// target schema contains the single first vertex occurring in an edge.
/// The query result is nonempty iff the graph is k-colorable.
ConjunctiveQuery KColorQuery(const Graph& g);

/// Non-Boolean variant (Section 6.1): `free_fraction` of the vertices
/// (rounded down, at least 1) are chosen uniformly at random to be free and
/// listed in the target schema. The paper uses free_fraction = 0.2.
ConjunctiveQuery KColorQueryNonBoolean(const Graph& g, double free_fraction,
                                       Rng& rng);

/// The Appendix A pentagon query, with atoms in exactly the paper's order:
/// edge(v1,v2), edge(v1,v5), edge(v4,v5), edge(v3,v4), edge(v2,v3),
/// projecting v1 (attributes are 0-based: v_i -> i-1). Golden fixture for
/// the SQL generator tests.
ConjunctiveQuery PentagonQuery();

}  // namespace ppr

#endif  // PPR_ENCODE_KCOLOR_H_
