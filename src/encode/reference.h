#ifndef PPR_ENCODE_REFERENCE_H_
#define PPR_ENCODE_REFERENCE_H_

#include "encode/sat.h"
#include "graph/graph.h"

namespace ppr {

/// Backtracking k-colorability decision (independent of the query engine).
/// Oracle for the strategy-equivalence tests and benches: every strategy's
/// Boolean answer must match this.
bool IsKColorable(const Graph& g, int k);

/// DPLL-style satisfiability decision with unit propagation. Oracle for
/// the SAT-encoded queries.
bool IsSatisfiable(const Cnf& cnf);

}  // namespace ppr

#endif  // PPR_ENCODE_REFERENCE_H_
