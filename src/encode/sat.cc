#include "encode/sat.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace ppr {

std::string Cnf::ToString() const {
  std::ostringstream out;
  for (size_t c = 0; c < clauses.size(); ++c) {
    if (c > 0) out << " & ";
    out << "(";
    for (size_t i = 0; i < clauses[c].size(); ++i) {
      if (i > 0) out << " | ";
      if (clauses[c][i].negated) out << "!";
      out << "x" << clauses[c][i].var;
    }
    out << ")";
  }
  return out.str();
}

Cnf RandomKSat(int num_vars, int num_clauses, int k, Rng& rng) {
  PPR_CHECK(k >= 1 && num_vars >= k && num_clauses >= 0);
  Cnf cnf;
  cnf.num_vars = num_vars;
  cnf.clauses.reserve(static_cast<size_t>(num_clauses));
  for (int c = 0; c < num_clauses; ++c) {
    // k distinct variables via partial Fisher-Yates over a scratch list.
    std::vector<int> vars(static_cast<size_t>(num_vars));
    for (int v = 0; v < num_vars; ++v) vars[static_cast<size_t>(v)] = v;
    std::vector<Literal> clause;
    clause.reserve(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      const size_t j =
          static_cast<size_t>(i) +
          static_cast<size_t>(rng.NextBounded(vars.size() - i));
      std::swap(vars[static_cast<size_t>(i)], vars[j]);
      clause.push_back(
          Literal{vars[static_cast<size_t>(i)], rng.NextBernoulli(0.5)});
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

std::string SatRelationName(int k, unsigned mask) {
  std::ostringstream out;
  out << "sat" << k << "_" << mask;
  return out.str();
}

void AddSatRelations(int k, Database* db) {
  PPR_CHECK(k >= 1 && k <= 16);
  const unsigned rows = 1u << k;
  for (unsigned mask = 0; mask < rows; ++mask) {
    std::vector<AttrId> cols(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) cols[static_cast<size_t>(i)] = i;
    Relation rel{Schema(cols)};
    // Keep every assignment except the one falsifying all literals:
    // position i false means value = (negated ? 1 : 0).
    unsigned falsifying = 0;
    for (int i = 0; i < k; ++i) {
      if (mask & (1u << i)) falsifying |= 1u << i;
    }
    for (unsigned row = 0; row < rows; ++row) {
      if (row == falsifying) continue;
      std::vector<Value> tuple(static_cast<size_t>(k));
      for (int i = 0; i < k; ++i) {
        tuple[static_cast<size_t>(i)] = (row >> i) & 1u;
      }
      rel.AddTuple(tuple);
    }
    db->Put(SatRelationName(k, mask), std::move(rel));
  }
}

namespace {

std::vector<Atom> ClauseAtoms(const Cnf& cnf) {
  std::vector<Atom> atoms;
  atoms.reserve(cnf.clauses.size());
  for (const auto& clause : cnf.clauses) {
    unsigned mask = 0;
    std::vector<AttrId> args;
    args.reserve(clause.size());
    for (size_t i = 0; i < clause.size(); ++i) {
      if (clause[i].negated) mask |= 1u << i;
      args.push_back(clause[i].var);
    }
    atoms.push_back(
        Atom{SatRelationName(static_cast<int>(clause.size()), mask),
             std::move(args)});
  }
  return atoms;
}

std::vector<AttrId> UsedVars(const Cnf& cnf) {
  std::vector<AttrId> used;
  for (const auto& clause : cnf.clauses) {
    for (const Literal& lit : clause) used.push_back(lit.var);
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used;
}

}  // namespace

ConjunctiveQuery SatQuery(const Cnf& cnf) {
  std::vector<Atom> atoms = ClauseAtoms(cnf);
  PPR_CHECK(!atoms.empty());
  const AttrId first = atoms.front().args.front();
  return ConjunctiveQuery(std::move(atoms), {first});
}

ConjunctiveQuery SatQueryNonBoolean(const Cnf& cnf, double free_fraction,
                                    Rng& rng) {
  std::vector<Atom> atoms = ClauseAtoms(cnf);
  PPR_CHECK(!atoms.empty());
  PPR_CHECK(free_fraction > 0.0 && free_fraction <= 1.0);
  std::vector<AttrId> candidates = UsedVars(cnf);
  int num_free = static_cast<int>(free_fraction *
                                  static_cast<double>(candidates.size()));
  num_free = std::max(num_free, 1);
  rng.Shuffle(candidates);
  std::vector<AttrId> free_vars(candidates.begin(),
                                candidates.begin() + num_free);
  std::sort(free_vars.begin(), free_vars.end());
  return ConjunctiveQuery(std::move(atoms), std::move(free_vars));
}

}  // namespace ppr
