#ifndef PPR_COMMON_ARENA_H_
#define PPR_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"

namespace ppr {

/// Bump allocator for operator scratch memory (hash-table slots, packed
/// join keys, sort orders, tuple assembly buffers).
///
/// Operators allocate with no per-allocation bookkeeping and free in bulk:
/// an ArenaScope releases everything an operator allocated when the
/// operator returns, and Reset() rewinds the whole arena between runs
/// while *keeping the underlying blocks*, so repeated executions of a
/// compiled plan perform zero heap allocations in steady state.
///
/// Blocks grow geometrically; all allocations are 16-byte aligned (sizes
/// are rounded up), which covers every trivially-copyable type the engine
/// stores. Memory handed out is uninitialized.
///
/// An arena is strictly single-owner: no locks, one thread at a time. The
/// concurrent runtime gives each worker thread its own arena (reused
/// across that worker's jobs, never shared), which is what keeps operator
/// scratch allocation lock-free under inter-query parallelism.
class ExecArena {
 public:
  /// Rewind point: everything allocated after Save() is released by
  /// Restore(). Checkpoints nest (stack discipline, enforced by usage).
  struct Checkpoint {
    size_t block = 0;
    size_t offset = 0;
    size_t used = 0;
  };

  ExecArena() = default;
  ExecArena(const ExecArena&) = delete;
  ExecArena& operator=(const ExecArena&) = delete;
  ExecArena(ExecArena&&) = default;
  ExecArena& operator=(ExecArena&&) = default;

  /// Returns a 16-byte-aligned uninitialized buffer of at least `bytes`.
  void* Allocate(size_t bytes) {
    bytes = RoundUp(bytes);
    if (cur_ < blocks_.size() && offset_ + bytes <= block_sizes_[cur_]) {
      void* p = blocks_[cur_].get() + offset_;
      offset_ += bytes;
      used_ += bytes;
      peak_used_ = std::max(peak_used_, used_);
      return p;
    }
    return AllocateSlow(bytes);
  }

  /// Typed allocation of `n` elements (uninitialized). T must be
  /// trivially copyable and destructible; nothing is ever destroyed.
  template <typename T>
  std::span<T> AllocSpan(int64_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    if (n <= 0) return {};
    return {static_cast<T*>(Allocate(sizeof(T) * static_cast<size_t>(n))),
            static_cast<size_t>(n)};
  }

  Checkpoint Save() const { return {cur_, offset_, used_}; }

  /// Releases everything allocated since `cp` (stack order).
  void Restore(const Checkpoint& cp) {
    PPR_DCHECK(cp.used <= used_);
    cur_ = cp.block;
    offset_ = cp.offset;
    used_ = cp.used;
  }

  /// Rewinds to empty, keeping all blocks for reuse.
  void Reset() {
    cur_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  /// Bytes currently handed out (live scratch).
  size_t bytes_in_use() const { return used_; }

  /// High-water mark of bytes_in_use() over the arena's lifetime.
  size_t peak_bytes() const { return peak_used_; }

  /// Total bytes of backing blocks currently reserved.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (size_t s : block_sizes_) total += s;
    return total;
  }

 private:
  static constexpr size_t kMinBlockBytes = size_t{1} << 16;

  static size_t RoundUp(size_t bytes) { return (bytes + 15) & ~size_t{15}; }

  void* AllocateSlow(size_t bytes);

  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::vector<size_t> block_sizes_;
  size_t cur_ = 0;     // index of the block being bumped
  size_t offset_ = 0;  // bump offset within blocks_[cur_]
  size_t used_ = 0;
  size_t peak_used_ = 0;
};

/// RAII release of operator scratch: records a checkpoint on entry and
/// restores it on exit, so each operator's arena usage is transient while
/// the blocks stay hot for the next operator.
class ArenaScope {
 public:
  explicit ArenaScope(ExecArena& arena)
      : arena_(arena), checkpoint_(arena.Save()) {}
  ~ArenaScope() { arena_.Restore(checkpoint_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// Bytes this scope has allocated so far (the operator's scratch size).
  size_t bytes_allocated() const {
    return arena_.bytes_in_use() - checkpoint_.used;
  }

 private:
  ExecArena& arena_;
  ExecArena::Checkpoint checkpoint_;
};

}  // namespace ppr

#endif  // PPR_COMMON_ARENA_H_
