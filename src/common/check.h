#ifndef PPR_COMMON_CHECK_H_
#define PPR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ppr {
namespace internal_check {

/// Prints a fatal-check failure message and aborts. Never returns.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "PPR_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal_check
}  // namespace ppr

/// Aborts the process when `cond` is false. Used for programmer-error
/// invariants that must hold in all build modes (the library is a research
/// artifact; silent corruption would invalidate experiments).
#define PPR_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::ppr::internal_check::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                                \
  } while (0)

/// PPR_DCHECK compiles to PPR_CHECK in debug builds and to nothing in
/// release builds. Use on hot paths only.
#ifndef NDEBUG
#define PPR_DCHECK(cond) PPR_CHECK(cond)
#else
#define PPR_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

#endif  // PPR_COMMON_CHECK_H_
