#include "common/arena.h"

#include <algorithm>

namespace ppr {

void* ExecArena::AllocateSlow(size_t bytes) {
  // Walk forward through already-reserved blocks (they are kept across
  // Reset/Restore) before reserving a new one.
  size_t next = blocks_.empty() ? 0 : cur_ + 1;
  while (next < blocks_.size() && block_sizes_[next] < bytes) ++next;
  if (next == blocks_.size()) {
    const size_t last = block_sizes_.empty() ? 0 : block_sizes_.back();
    const size_t size = std::max({kMinBlockBytes, last * 2, bytes});
    blocks_.push_back(std::make_unique_for_overwrite<std::byte[]>(size));
    block_sizes_.push_back(size);
  }
  cur_ = next;
  offset_ = bytes;
  used_ += bytes;
  peak_used_ = std::max(peak_used_, used_);
  return blocks_[cur_].get();
}

}  // namespace ppr
