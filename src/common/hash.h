#ifndef PPR_COMMON_HASH_H_
#define PPR_COMMON_HASH_H_

#include <cstdint>

#include "common/types.h"

namespace ppr {

/// Hashes a fixed-width key of `width` packed values (a row of join-key
/// columns). SplitMix64-style multiply-xorshift mixing per word: cheap,
/// branch-free, and well distributed even on the tiny domains the paper
/// uses (colors {1,2,3}), where identity-style hashes would collapse to a
/// handful of buckets.
inline uint64_t HashPackedKey(const Value* key, int width) {
  uint64_t h = 0x9E3779B97F4A7C15ULL ^ static_cast<uint64_t>(width);
  for (int i = 0; i < width; ++i) {
    h ^= static_cast<uint32_t>(key[i]);
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
  }
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

/// HashPackedKey over a column-major key: value i comes from cols[i][row]
/// instead of key[i]. Must mix identically to HashPackedKey — a flat
/// hash table rehashes its (row-major) key store with HashPackedKey, so
/// a key inserted through the column-major path has to land on the same
/// probe sequence after a grow.
inline uint64_t HashColsKey(const Value* const* cols, int64_t row,
                            int width) {
  uint64_t h = 0x9E3779B97F4A7C15ULL ^ static_cast<uint64_t>(width);
  for (int i = 0; i < width; ++i) {
    h ^= static_cast<uint32_t>(cols[i][row]);
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
  }
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

}  // namespace ppr

#endif  // PPR_COMMON_HASH_H_
