#ifndef PPR_COMMON_STRINGS_H_
#define PPR_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>

namespace ppr {

/// Joins the elements of `range` with `sep`, using operator<< to render
/// each element. Example: StrJoin(std::vector<int>{1,2,3}, ", ") == "1, 2, 3".
template <typename Range>
std::string StrJoin(const Range& range, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : range) {
    if (!first) out << sep;
    out << item;
    first = false;
  }
  return out.str();
}

/// Like StrJoin but renders each element through `fmt(element)`.
template <typename Range, typename Fmt>
std::string StrJoinFormatted(const Range& range, std::string_view sep,
                             Fmt&& fmt) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : range) {
    if (!first) out << sep;
    out << fmt(item);
    first = false;
  }
  return out.str();
}

}  // namespace ppr

#endif  // PPR_COMMON_STRINGS_H_
