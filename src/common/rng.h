#ifndef PPR_COMMON_RNG_H_
#define PPR_COMMON_RNG_H_

#include <cstdint>
#include <utility>

#include "common/check.h"

namespace ppr {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// All randomized pieces of the library (instance generators, tie-breaking
/// in the greedy reordering heuristic, the genetic plan search) draw from an
/// explicitly passed Rng so that every experiment is reproducible from its
/// seed. Not cryptographically secure; plenty for workload generation.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent-looking streams
  /// (state expanded with SplitMix64 as recommended by the xoshiro authors).
  explicit Rng(uint64_t seed);

  /// Returns the next 64 uniformly random bits.
  uint64_t NextU64();

  /// Returns a uniform integer in [0, bound). `bound` must be positive.
  /// Uses rejection sampling, so the result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform int in the inclusive range [lo, hi].
  int NextInt(int lo, int hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(T& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace ppr

#endif  // PPR_COMMON_RNG_H_
