#ifndef PPR_COMMON_ENV_H_
#define PPR_COMMON_ENV_H_

#include <string>

namespace ppr {

/// Process environment knobs, read exactly once. The concurrent runtime
/// (src/runtime) executes plans on worker threads; std::getenv is not
/// required to be thread-safe against a concurrently modified
/// environment, so every PPR_* variable is captured into this struct the
/// first time ProcessEnv() runs — BatchExecutor forces that from the
/// submitting thread before any worker starts, and the lazy consumers
/// (obs/trace.cc, exec/verify_hook.cc) read the struct instead of calling
/// getenv themselves.
struct EnvConfig {
  /// PPR_TRACE: non-empty value enables process-wide tracing with that
  /// path as the Chrome-trace export target (obs/trace.h).
  bool trace_enabled = false;
  std::string trace_path;

  /// PPR_VERIFY_PLANS: set (and not "0") runs the installed static plan
  /// verifier hooks inside PhysicalPlan::Compile (exec/verify_hook.h).
  bool verify_plans = false;

  /// PPR_VERIFY_SEMANTICS: set (and not "0") additionally runs the
  /// semantic certification tier — plan→query extraction plus a
  /// Chandra–Merlin equivalence proof (analysis/semantic/certify.h) —
  /// inside PhysicalPlan::Compile and ExplainPlan. Independent of
  /// PPR_VERIFY_PLANS; either tier can run alone.
  bool verify_semantics = false;

  /// PPR_THREADS: default worker count for the batch runtime and the
  /// thread-scaling bench harness; 0 means "unset" (callers pick their
  /// own default, typically 1 or hardware_concurrency).
  int default_threads = 0;

  /// PPR_MORSEL_SIZE: rows per morsel for the columnar batch kernels
  /// (relational/batch_ops.h) and the morsel driver (src/runtime).
  /// Defaults to 64K rows — a probe-side morsel of that size keeps the
  /// gathered key columns L2-resident on common hardware. The morsel
  /// partition is a *semantic* knob only for performance: results and
  /// merged metrics are byte-identical for any positive value.
  int64_t morsel_rows = 65536;

  /// PPR_QUERY_LOG: non-empty path enables the structured query log
  /// (obs/telemetry/query_log.h) with that file as the JSONL export
  /// target, rewritten at every batch/morsel drain.
  std::string query_log_path;

  /// PPR_STATS_PORT: when set, the Prometheus exposition server
  /// (obs/telemetry/stats_server.h) listens on this loopback port
  /// (0 picks an ephemeral port). -1 means unset.
  int stats_port = -1;

  /// PPR_FLIGHT_DIR: non-empty directory enables the anomaly flight
  /// recorder (obs/telemetry/flight_recorder.h); each triggered job
  /// dumps a self-contained flight-<id>.json there. Implies query-record
  /// collection even without PPR_QUERY_LOG (the recorder needs the
  /// log's running latency medians).
  std::string flight_dir;

  /// PPR_FLIGHT_LATENCY_MULT: a job whose wall time exceeds this
  /// multiple of the running median for its fingerprint bucket trips the
  /// latency-outlier flight trigger.
  double flight_latency_mult = 8.0;

  /// PPR_FLIGHT_SPANS: how many trailing trace spans a flight dump
  /// snapshots.
  int flight_spans = 64;
};

/// The once-initialized environment snapshot. First call reads the
/// environment (thread-safe via the magic-static guarantee); later calls
/// are a plain reference return and never touch getenv.
const EnvConfig& ProcessEnv();

}  // namespace ppr

#endif  // PPR_COMMON_ENV_H_
