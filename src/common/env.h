#ifndef PPR_COMMON_ENV_H_
#define PPR_COMMON_ENV_H_

#include <string>

namespace ppr {

/// Process environment knobs, read exactly once. The concurrent runtime
/// (src/runtime) executes plans on worker threads; std::getenv is not
/// required to be thread-safe against a concurrently modified
/// environment, so every PPR_* variable is captured into this struct the
/// first time ProcessEnv() runs — BatchExecutor forces that from the
/// submitting thread before any worker starts, and the lazy consumers
/// (obs/trace.cc, exec/verify_hook.cc) read the struct instead of calling
/// getenv themselves.
struct EnvConfig {
  /// PPR_TRACE: non-empty value enables process-wide tracing with that
  /// path as the Chrome-trace export target (obs/trace.h).
  bool trace_enabled = false;
  std::string trace_path;

  /// PPR_VERIFY_PLANS: set (and not "0") runs the installed static plan
  /// verifier hooks inside PhysicalPlan::Compile (exec/verify_hook.h).
  bool verify_plans = false;

  /// PPR_VERIFY_SEMANTICS: set (and not "0") additionally runs the
  /// semantic certification tier — plan→query extraction plus a
  /// Chandra–Merlin equivalence proof (analysis/semantic/certify.h) —
  /// inside PhysicalPlan::Compile and ExplainPlan. Independent of
  /// PPR_VERIFY_PLANS; either tier can run alone.
  bool verify_semantics = false;

  /// PPR_THREADS: default worker count for the batch runtime and the
  /// thread-scaling bench harness; 0 means "unset" (callers pick their
  /// own default, typically 1 or hardware_concurrency).
  int default_threads = 0;

  /// PPR_MORSEL_SIZE: rows per morsel for the columnar batch kernels
  /// (relational/batch_ops.h) and the morsel driver (src/runtime).
  /// Defaults to 64K rows — a probe-side morsel of that size keeps the
  /// gathered key columns L2-resident on common hardware. The morsel
  /// partition is a *semantic* knob only for performance: results and
  /// merged metrics are byte-identical for any positive value.
  int64_t morsel_rows = 65536;
};

/// The once-initialized environment snapshot. First call reads the
/// environment (thread-safe via the magic-static guarantee); later calls
/// are a plain reference return and never touch getenv.
const EnvConfig& ProcessEnv();

}  // namespace ppr

#endif  // PPR_COMMON_ENV_H_
