#include "common/env.h"

#include <cstdlib>
#include <cstring>

namespace ppr {

const EnvConfig& ProcessEnv() {
  static const EnvConfig config = [] {
    EnvConfig c;
    if (const char* env = std::getenv("PPR_TRACE");
        env != nullptr && env[0] != '\0') {
      c.trace_enabled = true;
      c.trace_path = env;
    }
    if (const char* env = std::getenv("PPR_VERIFY_PLANS");
        env != nullptr && std::strcmp(env, "0") != 0) {
      c.verify_plans = true;
    }
    if (const char* env = std::getenv("PPR_THREADS");
        env != nullptr && env[0] != '\0') {
      const int n = std::atoi(env);
      if (n > 0) c.default_threads = n;
    }
    return c;
  }();
  return config;
}

}  // namespace ppr
