#include "common/env.h"

#include <cstdlib>
#include <cstring>

namespace ppr {

const EnvConfig& ProcessEnv() {
  // The only getenv site in the tree (enforced by tools/pprlint): the
  // magic static runs the lambda exactly once under the compiler's
  // init guard, so concurrent first callers block until the snapshot is
  // complete and no thread ever observes a partial EnvConfig. getenv
  // itself is safe here because nothing in this process calls setenv.
  static const EnvConfig config = [] {
    EnvConfig c;
    // NOLINTBEGIN(concurrency-mt-unsafe) -- single sanctioned snapshot;
    // see the comment above.
    if (const char* env = std::getenv("PPR_TRACE");
        env != nullptr && env[0] != '\0') {
      c.trace_enabled = true;
      c.trace_path = env;
    }
    if (const char* env = std::getenv("PPR_VERIFY_PLANS");
        env != nullptr && std::strcmp(env, "0") != 0) {
      c.verify_plans = true;
    }
    if (const char* env = std::getenv("PPR_VERIFY_SEMANTICS");
        env != nullptr && std::strcmp(env, "0") != 0) {
      c.verify_semantics = true;
    }
    if (const char* env = std::getenv("PPR_THREADS");
        env != nullptr && env[0] != '\0') {
      const int n = std::atoi(env);
      if (n > 0) c.default_threads = n;
    }
    if (const char* env = std::getenv("PPR_MORSEL_SIZE");
        env != nullptr && env[0] != '\0') {
      const long long n = std::atoll(env);
      if (n > 0) c.morsel_rows = n;
    }
    if (const char* env = std::getenv("PPR_QUERY_LOG");
        env != nullptr && env[0] != '\0') {
      c.query_log_path = env;
    }
    if (const char* env = std::getenv("PPR_STATS_PORT");
        env != nullptr && env[0] != '\0') {
      const int port = std::atoi(env);
      if (port >= 0 && port <= 65535) c.stats_port = port;
    }
    if (const char* env = std::getenv("PPR_FLIGHT_DIR");
        env != nullptr && env[0] != '\0') {
      c.flight_dir = env;
    }
    if (const char* env = std::getenv("PPR_FLIGHT_LATENCY_MULT");
        env != nullptr && env[0] != '\0') {
      const double mult = std::atof(env);
      if (mult > 1.0) c.flight_latency_mult = mult;
    }
    if (const char* env = std::getenv("PPR_FLIGHT_SPANS");
        env != nullptr && env[0] != '\0') {
      const int n = std::atoi(env);
      if (n > 0) c.flight_spans = n;
    }
    // NOLINTEND(concurrency-mt-unsafe)
    return c;
  }();
  return config;
}

}  // namespace ppr
