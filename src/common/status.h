#ifndef PPR_COMMON_STATUS_H_
#define PPR_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace ppr {

/// Error category for fallible operations. The library never throws across
/// its public API; operations that can fail on valid-but-unsatisfiable
/// inputs return Status / Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller supplied a malformed query/graph/order
  kNotFound,          // a named relation/attribute does not exist
  kResourceExhausted, // execution exceeded its tuple/step budget (timeout)
  kInternal,          // invariant violation surfaced as an error
  kUnavailable,       // transiently refused (overload shed, deadline, drain)
};

/// Lightweight status object: a code plus a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error status. Minimal StatusOr-alike: enough for a
/// research library without pulling in absl.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_value;`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error: `return Status::NotFound(...);`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    PPR_CHECK(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status (OK if the result holds a value).
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  /// Value accessors; PPR_CHECK-fail when the result holds an error.
  const T& value() const& {
    PPR_CHECK(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    PPR_CHECK(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    PPR_CHECK(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace ppr

#endif  // PPR_COMMON_STATUS_H_
