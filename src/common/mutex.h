#ifndef PPR_COMMON_MUTEX_H_
#define PPR_COMMON_MUTEX_H_

// The ONLY file in src/ allowed to name the raw std synchronization
// primitives (enforced by tools/pprlint). Everything else takes ppr::Mutex /
// ppr::MutexLock / ppr::CondVar so that every lock the process owns is a
// Clang capability and every guarded access is checked by
// -Wthread-safety (PPR_THREAD_SAFETY=ON).
#include <condition_variable>  // pprlint: allow(raw-sync)
#include <mutex>               // pprlint: allow(raw-sync)

#if defined(PPR_DEBUG_LOCK_ORDER)
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>
#endif

#include "common/annotations.h"

namespace ppr {

// ---------------------------------------------------------------------------
// Canonical lock acquisition order
//
// Proven acyclic by tools/pprcheck (the lock-order report artifact in
// CI re-derives it from the AST on every push). A thread holding a
// mutex may only acquire mutexes of a STRICTLY GREATER rank:
//
//   rank 10  kLockRankApp        application/service mutexes —
//                                QueryService::mu_, ServiceServer::mu_,
//                                per-connection write_mu, ThreadPool::mu_,
//                                BoundedQueue::mu_, PlanCache shard/in-flight
//                                mutexes, verifier-hook state. These are
//                                never nested with EACH OTHER (every
//                                holder's scope closes before the next
//                                acquisition); they sit below the obs
//                                layer because app code records telemetry,
//                                never the reverse.
//   rank 20  kLockRankObs        GlobalObsMutex() — the process-wide
//                                observability capability (obs/obs_lock.h).
//   rank 30  kLockRankTelemetry  telemetry internals acquired while the
//                                obs mutex is held: QueryLog::Shard::mu,
//                                FlightRecorder::mu_.
//
// The only sanctioned cross-rank nestings today are
//   GlobalObsMutex() -> QueryLog::Shard::mu   (append/flush/clear under obs)
//   GlobalObsMutex() -> FlightRecorder::mu_   (flight capture under obs)
// i.e. 20 -> 30. Anything new must acquire upward; pprcheck's lock-order
// check fails CI on a cycle, and PPR_DEBUG_LOCK_ORDER builds abort at
// runtime on the first out-of-order acquisition, so dynamic tests
// corroborate the static proof.
// ---------------------------------------------------------------------------

enum LockRank : int {
  kLockRankApp = 10,
  kLockRankObs = 20,
  kLockRankTelemetry = 30,
};

#if defined(PPR_DEBUG_LOCK_ORDER)
namespace lock_order_internal {

struct HeldLock {
  const void* mu;
  int rank;
};

/// Per-thread stack of currently held locks. A vector, not a fixed
/// array: depth is tiny (2 in the whole tree) but tests may nest more.
inline thread_local std::vector<HeldLock> g_held;

inline void CheckAcquire(const void* mu, int rank) {
  for (const HeldLock& held : g_held) {
    if (held.mu == mu) {
      std::fprintf(stderr,
                   "PPR_DEBUG_LOCK_ORDER: double acquisition of mutex %p "
                   "(rank %d) on this thread\n",
                   mu, rank);
      std::abort();
    }
    if (held.rank >= rank) {
      std::fprintf(stderr,
                   "PPR_DEBUG_LOCK_ORDER: acquiring rank-%d mutex %p while "
                   "holding rank-%d mutex %p violates the canonical order "
                   "(see src/common/mutex.h)\n",
                   rank, mu, held.rank, held.mu);
      std::abort();
    }
  }
}

inline void PushHeld(const void* mu, int rank) {
  g_held.push_back(HeldLock{mu, rank});
}

inline void PopHeld(const void* mu) {
  // Scan from the top: unlock order is LIFO in practice (RAII scopes),
  // but explicit Unlock() is allowed to release out of order.
  for (auto it = g_held.rbegin(); it != g_held.rend(); ++it) {
    if (it->mu == mu) {
      g_held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace lock_order_internal
#endif  // PPR_DEBUG_LOCK_ORDER

/// Annotated exclusive mutex over std::mutex. Same cost, same semantics;
/// the wrapper exists so fields can be GUARDED_BY it and methods
/// REQUIRES/EXCLUDES it, making PR 3/4's comment-only threading
/// contracts compile errors under Clang. Under PPR_DEBUG_LOCK_ORDER the
/// optional rank (default kLockRankApp) is checked against the canonical
/// acquisition order above on every Lock().
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(int rank)
#if defined(PPR_DEBUG_LOCK_ORDER)
      : rank_(rank) {
  }
#else
  {
    (void)rank;
  }
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if defined(PPR_DEBUG_LOCK_ORDER)
    lock_order_internal::CheckAcquire(this, rank_);
#endif
    mu_.lock();  // pprlint: allow(raw-sync)
#if defined(PPR_DEBUG_LOCK_ORDER)
    lock_order_internal::PushHeld(this, rank_);
#endif
  }
  void Unlock() RELEASE() {
#if defined(PPR_DEBUG_LOCK_ORDER)
    lock_order_internal::PopHeld(this);
#endif
    mu_.unlock();  // pprlint: allow(raw-sync)
  }
  bool TryLock() TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
#if defined(PPR_DEBUG_LOCK_ORDER)
    // TryLock never blocks, so it cannot deadlock and is exempt from
    // the order check; it still joins the held stack so later
    // acquisitions are checked against it.
    if (acquired) lock_order_internal::PushHeld(this, rank_);
#endif
    return acquired;
  }

  /// Static-analysis escape hatch: tells the analysis this thread holds
  /// the mutex when ownership arrived some way it cannot see (e.g.
  /// handed across a queue). Runtime no-op — std::mutex cannot verify
  /// its holder.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;  // pprlint: allow(raw-sync)
#if defined(PPR_DEBUG_LOCK_ORDER)
  const int rank_ = kLockRankApp;
#endif
};

/// RAII lock for Mutex — the scoped capability the analysis understands.
/// Deliberately has no deferred/adoptable variants: every lock in the
/// tree is either a MutexLock scope or an explicit Lock()/Unlock() pair
/// the analysis tracks through ACQUIRE/RELEASE annotations.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() REQUIRES the mutex, so
/// "waiting without the lock" and "waiting on the wrong lock" are
/// compile errors; waiters spell their predicate as an explicit
/// while-loop around Wait() (no lambda — the analysis cannot see lock
/// state inside a closure body).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups happen; always wait in a predicate loop.
  /// Under PPR_DEBUG_LOCK_ORDER the mutex stays on the held stack for
  /// the duration of the wait: ownership returns to this thread before
  /// Wait() returns, so the caller's scope never really gave it up.
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait and
    // release the adoption before the guard destructs, so ownership
    // stays with the caller's MutexLock scope.
    std::unique_lock<std::mutex> lock(mu.mu_,     // pprlint: allow(raw-sync)
                                      std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Wakes one waiter. Callers may signal with or without the mutex
  /// held; both are correct, unlocked is cheaper.
  void NotifyOne() { cv_.notify_one(); }

  /// Wakes all waiters.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // pprlint: allow(raw-sync)
};

}  // namespace ppr

#endif  // PPR_COMMON_MUTEX_H_
