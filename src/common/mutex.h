#ifndef PPR_COMMON_MUTEX_H_
#define PPR_COMMON_MUTEX_H_

// The ONLY file in src/ allowed to name the raw std synchronization
// primitives (enforced by tools/pprlint). Everything else takes ppr::Mutex /
// ppr::MutexLock / ppr::CondVar so that every lock the process owns is a
// Clang capability and every guarded access is checked by
// -Wthread-safety (PPR_THREAD_SAFETY=ON).
#include <condition_variable>  // pprlint: allow(raw-sync)
#include <mutex>               // pprlint: allow(raw-sync)

#include "common/annotations.h"

namespace ppr {

/// Annotated exclusive mutex over std::mutex. Same cost, same semantics;
/// the wrapper exists so fields can be GUARDED_BY it and methods
/// REQUIRES/EXCLUDES it, making PR 3/4's comment-only threading
/// contracts compile errors under Clang.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }            // pprlint: allow(raw-sync)
  void Unlock() RELEASE() { mu_.unlock(); }        // pprlint: allow(raw-sync)
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Static-analysis escape hatch: tells the analysis this thread holds
  /// the mutex when ownership arrived some way it cannot see (e.g.
  /// handed across a queue). Runtime no-op — std::mutex cannot verify
  /// its holder.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;  // pprlint: allow(raw-sync)
};

/// RAII lock for Mutex — the scoped capability the analysis understands.
/// Deliberately has no deferred/adoptable variants: every lock in the
/// tree is either a MutexLock scope or an explicit Lock()/Unlock() pair
/// the analysis tracks through ACQUIRE/RELEASE annotations.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() REQUIRES the mutex, so
/// "waiting without the lock" and "waiting on the wrong lock" are
/// compile errors; waiters spell their predicate as an explicit
/// while-loop around Wait() (no lambda — the analysis cannot see lock
/// state inside a closure body).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait and
    // release the adoption before the guard destructs, so ownership
    // stays with the caller's MutexLock scope.
    std::unique_lock<std::mutex> lock(mu.mu_,     // pprlint: allow(raw-sync)
                                      std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Wakes one waiter. Callers may signal with or without the mutex
  /// held; both are correct, unlocked is cheaper.
  void NotifyOne() { cv_.notify_one(); }

  /// Wakes all waiters.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // pprlint: allow(raw-sync)
};

}  // namespace ppr

#endif  // PPR_COMMON_MUTEX_H_
