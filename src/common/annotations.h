#ifndef PPR_COMMON_ANNOTATIONS_H_
#define PPR_COMMON_ANNOTATIONS_H_

/// Clang thread-safety (capability) annotations, in the standard
/// spelling from the Clang documentation and Abseil's
/// thread_annotations.h. Under Clang they expand to the
/// `capability`-family attributes that power `-Wthread-safety`; under
/// every other compiler they expand to nothing, so the annotated tree
/// still builds with the default gcc toolchain.
///
/// The repo's capability model (DESIGN.md "Static thread-safety
/// analysis"): every piece of shared mutable state is either
///  - a field GUARDED_BY an annotated ppr::Mutex (common/mutex.h),
///  - reachable only through a method REQUIRES/EXCLUDES that Mutex, or
///  - thread-confined by construction (per-worker shards, magic
///    statics), in which case the confinement is documented where the
///    analysis cannot see it.
/// Raw std synchronization primitives are confined to common/mutex.h —
/// enforced by tools/pprlint — so everything the analysis can check, it
/// does check, on every build with `PPR_THREAD_SAFETY=ON`.

#if defined(__clang__) && !defined(SWIG)
#define PPR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PPR_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a capability ("mutex" is the conventional
/// role string used in diagnostics).
#define CAPABILITY(x) PPR_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY PPR_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a field (or a function's return value) is protected by
/// the given capability: reads require the capability held at least
/// shared, writes require it held exclusively.
#define GUARDED_BY(x) PPR_THREAD_ANNOTATION(guarded_by(x))

/// Like GUARDED_BY, but for the data a pointer field points to.
#define PT_GUARDED_BY(x) PPR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that callers must hold the given capabilit(ies) exclusively
/// before calling, and that the function does not release them.
#define REQUIRES(...) \
  PPR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared (reader) version of REQUIRES.
#define REQUIRES_SHARED(...) \
  PPR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Declares that the function acquires the capabilit(ies) and holds
/// them on return (callers must not already hold them).
#define ACQUIRE(...) PPR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Shared (reader) version of ACQUIRE.
#define ACQUIRE_SHARED(...) \
  PPR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Declares that the function releases the capabilit(ies), which callers
/// must hold on entry.
#define RELEASE(...) PPR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Shared (reader) version of RELEASE.
#define RELEASE_SHARED(...) \
  PPR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Declares that the function acquires the capability iff it returns
/// the given value (e.g. TRY_ACQUIRE(true) for a try-lock).
#define TRY_ACQUIRE(...) \
  PPR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the given capabilit(ies) — the
/// function acquires them itself, so holding one on entry deadlocks.
#define EXCLUDES(...) PPR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that the function (a runtime no-op here, std::mutex cannot
/// name its holder) tells the analysis to assume the capability is held.
#define ASSERT_CAPABILITY(x) PPR_THREAD_ANNOTATION(assert_capability(x))

/// Declares that the function returns a reference to the given
/// capability (used by accessors handing out the mutex itself).
#define RETURN_CAPABILITY(x) PPR_THREAD_ANNOTATION(lock_returned(x))

/// Turns the analysis off for one function. Every use must carry a
/// comment explaining which invariant the analysis cannot see.
#define NO_THREAD_SAFETY_ANALYSIS \
  PPR_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PPR_COMMON_ANNOTATIONS_H_
