#ifndef PPR_COMMON_TIMER_H_
#define PPR_COMMON_TIMER_H_

#include <chrono>

namespace ppr {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class WallTimer {
 public:
  /// Starts (or restarts) the stopwatch.
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII stopwatch accumulating its elapsed time into a caller-owned
/// sink: `*sink_seconds += elapsed` on destruction (or on an explicit
/// Stop(), whichever comes first). Replaces the manual
/// `WallTimer timer; ... x = timer.ElapsedSeconds();` pairs and keeps
/// timing correct across early returns. A null sink disarms the timer
/// entirely — no clock is read — so conditionally-enabled callers (the
/// trace span layer) pay nothing when disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink_seconds) : sink_(sink_seconds) {
    if (sink_ != nullptr) start_ = Clock::now();
  }
  ~ScopedTimer() { Stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Adds the elapsed time to the sink now and disarms the timer (the
  /// destructor and further Stop() calls become no-ops). Returns the
  /// seconds recorded, 0 when already stopped or disarmed. Call before
  /// returning a local whose member is the sink — relying on the
  /// destructor there would race NRVO.
  double Stop() {
    if (sink_ == nullptr) return 0.0;
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start_).count();
    *sink_ += seconds;
    sink_ = nullptr;
    return seconds;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  double* sink_;
};

}  // namespace ppr

#endif  // PPR_COMMON_TIMER_H_
