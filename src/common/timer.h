#ifndef PPR_COMMON_TIMER_H_
#define PPR_COMMON_TIMER_H_

#include <chrono>

namespace ppr {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class WallTimer {
 public:
  /// Starts (or restarts) the stopwatch.
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ppr

#endif  // PPR_COMMON_TIMER_H_
