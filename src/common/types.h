#ifndef PPR_COMMON_TYPES_H_
#define PPR_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace ppr {

/// Identifier of a query attribute (a.k.a. variable / vertex). The paper
/// uses "variable" and "attribute" interchangeably; so do we. Attribute ids
/// are small dense integers assigned by the query builder.
using AttrId = int32_t;

/// Sentinel for "no attribute".
inline constexpr AttrId kNoAttr = -1;

/// A database value. All experiments in the paper use tiny domains
/// (colors {1,2,3}, Boolean {0,1}), so a 32-bit integer domain loses
/// nothing while keeping tuples cache-friendly.
using Value = int32_t;

/// Monotonic counters used by execution statistics.
using Counter = int64_t;

inline constexpr Counter kCounterMax = std::numeric_limits<Counter>::max();

}  // namespace ppr

#endif  // PPR_COMMON_TYPES_H_
