#include "graph/graph.h"

#include <sstream>

#include "common/check.h"

namespace ppr {

Graph::Graph(int num_vertices) : n_(num_vertices) {
  PPR_CHECK(num_vertices >= 0);
  adj_.assign(static_cast<size_t>(n_) * static_cast<size_t>(n_), 0);
}

bool Graph::AddEdge(int u, int v) {
  PPR_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  if (u == v || adj_[Index(u, v)]) return false;
  adj_[Index(u, v)] = 1;
  adj_[Index(v, u)] = 1;
  insertion_order_.emplace_back(u, v);
  ++m_;
  return true;
}

bool Graph::HasEdge(int u, int v) const {
  PPR_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  return adj_[Index(u, v)] != 0;
}

int Graph::Degree(int v) const {
  PPR_CHECK(v >= 0 && v < n_);
  int d = 0;
  for (int u = 0; u < n_; ++u) d += adj_[Index(v, u)];
  return d;
}

std::vector<int> Graph::Neighbors(int v) const {
  PPR_CHECK(v >= 0 && v < n_);
  std::vector<int> out;
  for (int u = 0; u < n_; ++u) {
    if (adj_[Index(v, u)]) out.push_back(u);
  }
  return out;
}

std::vector<std::pair<int, int>> Graph::Edges() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(static_cast<size_t>(m_));
  for (int u = 0; u < n_; ++u) {
    for (int v = u + 1; v < n_; ++v) {
      if (adj_[Index(u, v)]) out.emplace_back(u, v);
    }
  }
  return out;
}

int Graph::NumComponents() const {
  std::vector<uint8_t> visited(static_cast<size_t>(n_), 0);
  std::vector<int> stack;
  int components = 0;
  for (int s = 0; s < n_; ++s) {
    if (visited[static_cast<size_t>(s)]) continue;
    ++components;
    stack.push_back(s);
    visited[static_cast<size_t>(s)] = 1;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      for (int u = 0; u < n_; ++u) {
        if (adj_[Index(v, u)] && !visited[static_cast<size_t>(u)]) {
          visited[static_cast<size_t>(u)] = 1;
          stack.push_back(u);
        }
      }
    }
  }
  return components;
}

bool Graph::IsClique(const std::vector<int>& vs) const {
  for (size_t i = 0; i < vs.size(); ++i) {
    for (size_t j = i + 1; j < vs.size(); ++j) {
      if (!HasEdge(vs[i], vs[j])) return false;
    }
  }
  return true;
}

std::string Graph::ToString() const {
  std::ostringstream out;
  out << "Graph(n=" << n_ << ", m=" << m_ << "):";
  for (const auto& [u, v] : Edges()) out << " " << u << "-" << v;
  return out.str();
}

}  // namespace ppr
