#ifndef PPR_GRAPH_TREEWIDTH_H_
#define PPR_GRAPH_TREEWIDTH_H_

#include "graph/elimination.h"
#include "graph/graph.h"

namespace ppr {

/// Exact treewidth via the Held-Karp-style dynamic program over vertex
/// subsets (Bodlaender et al., "Treewidth computations I"). Exponential in
/// n — intended for test oracles and the `ablation_orders` bench on graphs
/// with n <= ~20. PPR_CHECK-fails for n > 24.
int ExactTreewidth(const Graph& g);

/// Exact treewidth plus a witnessing optimal elimination order (same DP
/// with parent pointers).
EliminationOrder ExactOptimalOrder(const Graph& g);

/// Maximum-minimum-degree lower bound on treewidth: repeatedly delete a
/// minimum-degree vertex; the maximum minimum degree seen is a lower bound.
int MmdLowerBound(const Graph& g);

}  // namespace ppr

#endif  // PPR_GRAPH_TREEWIDTH_H_
