#include "graph/treewidth.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace ppr {
namespace {

using Mask = uint32_t;

// Q(S, v): the number of vertices outside S+{v} reachable from v via paths
// whose internal vertices all lie in S. This is the width incurred by
// eliminating v after exactly S has been eliminated.
int QValue(const Graph& g, Mask s, int v) {
  const int n = g.num_vertices();
  Mask visited = Mask{1} << v;
  std::vector<int> stack = {v};
  int q = 0;
  while (!stack.empty()) {
    const int x = stack.back();
    stack.pop_back();
    for (int u : g.Neighbors(x)) {
      const Mask bit = Mask{1} << u;
      if (visited & bit) continue;
      visited |= bit;
      if (s & bit) {
        stack.push_back(u);  // internal vertex inside S: keep walking
      } else {
        ++q;  // external vertex reached through S
      }
    }
  }
  (void)n;
  return q;
}

// f(S) = best achievable max-width when the vertices of S are eliminated
// first (in the best internal order). f(V) is the treewidth.
int FValue(const Graph& g, Mask s, std::unordered_map<Mask, int>& memo) {
  if (s == 0) return 0;
  auto it = memo.find(s);
  if (it != memo.end()) return it->second;
  int best = g.num_vertices();  // upper bound: width <= n-1 always
  for (int v = 0; v < g.num_vertices(); ++v) {
    const Mask bit = Mask{1} << v;
    if (!(s & bit)) continue;
    const Mask rest = s & ~bit;
    const int cand = std::max(FValue(g, rest, memo), QValue(g, rest, v));
    best = std::min(best, cand);
  }
  memo.emplace(s, best);
  return best;
}

}  // namespace

int ExactTreewidth(const Graph& g) {
  const int n = g.num_vertices();
  PPR_CHECK(n <= 24);
  if (n == 0) return -1;
  std::unordered_map<Mask, int> memo;
  const Mask all = (n == 32) ? ~Mask{0} : ((Mask{1} << n) - 1);
  return FValue(g, all, memo);
}

EliminationOrder ExactOptimalOrder(const Graph& g) {
  const int n = g.num_vertices();
  PPR_CHECK(n <= 24);
  EliminationOrder order(static_cast<size_t>(n));
  if (n == 0) return order;
  std::unordered_map<Mask, int> memo;
  Mask s = (Mask{1} << n) - 1;
  // Peel vertices from the end: the vertex eliminated last is the best
  // choice at S = V, and so on down.
  for (int pos = n - 1; pos >= 0; --pos) {
    int best_v = -1;
    int best_w = n + 1;
    for (int v = 0; v < n; ++v) {
      const Mask bit = Mask{1} << v;
      if (!(s & bit)) continue;
      const Mask rest = s & ~bit;
      const int cand = std::max(FValue(g, rest, memo), QValue(g, rest, v));
      if (cand < best_w) {
        best_w = cand;
        best_v = v;
      }
    }
    order[static_cast<size_t>(pos)] = best_v;
    s &= ~(Mask{1} << best_v);
  }
  return order;
}

int MmdLowerBound(const Graph& g) {
  const int n = g.num_vertices();
  if (n == 0) return -1;
  std::vector<uint8_t> removed(static_cast<size_t>(n), 0);
  std::vector<int> degree(static_cast<size_t>(n), 0);
  for (int v = 0; v < n; ++v) degree[static_cast<size_t>(v)] = g.Degree(v);

  int bound = 0;
  for (int step = 0; step < n; ++step) {
    int v = -1;
    for (int u = 0; u < n; ++u) {
      if (!removed[static_cast<size_t>(u)] &&
          (v < 0 ||
           degree[static_cast<size_t>(u)] < degree[static_cast<size_t>(v)])) {
        v = u;
      }
    }
    bound = std::max(bound, degree[static_cast<size_t>(v)]);
    removed[static_cast<size_t>(v)] = 1;
    for (int u : g.Neighbors(v)) {
      if (!removed[static_cast<size_t>(u)]) --degree[static_cast<size_t>(u)];
    }
  }
  return bound;
}

}  // namespace ppr
