#ifndef PPR_GRAPH_GRAPH_H_
#define PPR_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ppr {

/// A simple undirected graph on vertices 0..n-1 (no loops, no multi-edges).
///
/// Used in two roles, mirroring the paper: (1) 3-COLOR problem instances
/// that get translated into project-join queries, and (2) join graphs of
/// queries, whose treewidth characterizes the power of projection pushing
/// (Theorem 1). Dense adjacency-matrix representation: every graph in the
/// study has at most a few hundred vertices while the elimination-game
/// algorithms want O(1) edge tests.
class Graph {
 public:
  Graph() = default;

  /// Creates an edgeless graph with `num_vertices` vertices.
  explicit Graph(int num_vertices);

  int num_vertices() const { return n_; }
  int num_edges() const { return m_; }

  /// Adds edge {u, v}; returns false (and does nothing) when the edge
  /// already exists or u == v. PPR_CHECK-fails on out-of-range vertices.
  bool AddEdge(int u, int v);

  bool HasEdge(int u, int v) const;

  int Degree(int v) const;

  /// Neighbors of `v` in ascending order.
  std::vector<int> Neighbors(int v) const;

  /// All edges as (u, v) pairs with u < v, lexicographically sorted.
  std::vector<std::pair<int, int>> Edges() const;

  /// All edges in the order (and orientation) they were added. The query
  /// encoders list atoms in this order, matching the paper's setup: random
  /// instances keep their generation order, structured instances their
  /// natural construction order.
  const std::vector<std::pair<int, int>>& EdgesInInsertionOrder() const {
    return insertion_order_;
  }

  /// Number of connected components (isolated vertices count).
  int NumComponents() const;

  /// True when every pair of vertices in `vs` is adjacent.
  bool IsClique(const std::vector<int>& vs) const;

  /// Edge density m/n as defined in the paper's scaling experiments.
  double Density() const { return n_ == 0 ? 0.0 : static_cast<double>(m_) / n_; }

  /// Renders "Graph(n=.., m=..): 0-1 0-2 ..." for debugging.
  std::string ToString() const;

 private:
  size_t Index(int u, int v) const {
    return static_cast<size_t>(u) * static_cast<size_t>(n_) +
           static_cast<size_t>(v);
  }

  int n_ = 0;
  int m_ = 0;
  std::vector<uint8_t> adj_;  // n x n adjacency matrix
  std::vector<std::pair<int, int>> insertion_order_;
};

}  // namespace ppr

#endif  // PPR_GRAPH_GRAPH_H_
