#ifndef PPR_GRAPH_TREE_DECOMPOSITION_H_
#define PPR_GRAPH_TREE_DECOMPOSITION_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/elimination.h"
#include "graph/graph.h"

namespace ppr {

/// A tree decomposition (T, X) of a graph (Section 5): a tree whose nodes
/// carry bags of vertices such that (1) bags cover all vertices, (2) every
/// graph edge lies inside some bag, and (3) the bags containing any given
/// vertex form a connected subtree.
struct TreeDecomposition {
  /// bags[i] is the sorted vertex set X_i of tree node i.
  std::vector<std::vector<int>> bags;
  /// Tree edges as pairs of bag indices.
  std::vector<std::pair<int, int>> edges;

  int num_bags() const { return static_cast<int>(bags.size()); }

  /// max |X_i| - 1, or -1 for the empty decomposition.
  int width() const;

  /// Index of some bag containing all of `vs`, or -1.
  int FindCoveringBag(const std::vector<int>& vs) const;

  /// Bag indices adjacent to bag `i`.
  std::vector<int> AdjacentBags(int i) const;

  std::string ToString() const;
};

/// Verifies the three tree-decomposition properties against `g` plus tree
/// shape (connected, acyclic). Returns InvalidArgument describing the first
/// violation. Used as a property-test oracle after every construction.
Status ValidateTreeDecomposition(const Graph& g, const TreeDecomposition& td);

/// Builds a tree decomposition from an elimination order: bag of v = {v} +
/// its not-yet-eliminated neighbors in the fill graph; the bag of v hangs
/// off the bag of the first-eliminated vertex among those neighbors. Width
/// equals InducedWidth(g, order). Roots of different components are chained
/// so the result is a single tree.
TreeDecomposition DecompositionFromOrder(const Graph& g,
                                         const EliminationOrder& order);

}  // namespace ppr

#endif  // PPR_GRAPH_TREE_DECOMPOSITION_H_
