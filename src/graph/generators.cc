#include "graph/generators.h"

#include <cmath>

#include "common/check.h"

namespace ppr {

Graph RandomGraph(int num_vertices, int num_edges, Rng& rng) {
  PPR_CHECK(num_vertices >= 2 || num_edges == 0);
  const int64_t max_edges =
      static_cast<int64_t>(num_vertices) * (num_vertices - 1) / 2;
  PPR_CHECK(num_edges >= 0 && num_edges <= max_edges);
  Graph g(num_vertices);
  while (g.num_edges() < num_edges) {
    int u = rng.NextInt(0, num_vertices - 1);
    int v = rng.NextInt(0, num_vertices - 1);
    if (u != v) g.AddEdge(u, v);  // rejects duplicates; loop until m edges
  }
  return g;
}

Graph RandomGraphWithDensity(int num_vertices, double density, Rng& rng) {
  int target = static_cast<int>(std::lround(density * num_vertices));
  const int64_t max_edges =
      static_cast<int64_t>(num_vertices) * (num_vertices - 1) / 2;
  if (target > max_edges) target = static_cast<int>(max_edges);
  return RandomGraph(num_vertices, target, rng);
}

Graph AugmentedPath(int order) {
  PPR_CHECK(order >= 1);
  // Path vertices 0..order-1; the pendant of path vertex i is order + i.
  // Edges are added in the natural walk order (path step, then pendant),
  // which is the atom order the encoders use.
  Graph g(2 * order);
  for (int i = 0; i < order; ++i) {
    if (i + 1 < order) g.AddEdge(i, i + 1);
    g.AddEdge(i, order + i);
  }
  return g;
}

Graph Ladder(int order) {
  PPR_CHECK(order >= 1);
  // Rail A: 0..order-1, rail B: order..2*order-1, rung i: (i, order+i).
  // Natural walk order: rung, then the two rail steps to the next rung.
  Graph g(2 * order);
  for (int i = 0; i < order; ++i) {
    g.AddEdge(i, order + i);
    if (i + 1 < order) {
      g.AddEdge(i, i + 1);
      g.AddEdge(order + i, order + i + 1);
    }
  }
  return g;
}

Graph AugmentedLadder(int order) {
  PPR_CHECK(order >= 1);
  // Ladder vertices 0..2*order-1; the pendant of vertex v is 2*order + v.
  // Natural walk order: per rung position, the rung, both pendants, and
  // the rail steps onward.
  Graph g(4 * order);
  for (int i = 0; i < order; ++i) {
    g.AddEdge(i, order + i);                      // rung
    g.AddEdge(i, 2 * order + i);                  // pendant on rail A
    g.AddEdge(order + i, 3 * order + i);          // pendant on rail B
    if (i + 1 < order) {
      g.AddEdge(i, i + 1);
      g.AddEdge(order + i, order + i + 1);
    }
  }
  return g;
}

Graph AugmentedCircularLadder(int order) {
  PPR_CHECK(order >= 3);
  Graph g = AugmentedLadder(order);
  // Close each rail into a cycle: connect top and bottom of the ladder.
  g.AddEdge(order - 1, 0);
  g.AddEdge(2 * order - 1, order);
  return g;
}

Graph Cycle(int order) {
  PPR_CHECK(order >= 3);
  Graph g(order);
  for (int i = 0; i < order; ++i) g.AddEdge(i, (i + 1) % order);
  return g;
}

Graph Complete(int order) {
  PPR_CHECK(order >= 1);
  Graph g(order);
  for (int u = 0; u < order; ++u) {
    for (int v = u + 1; v < order; ++v) g.AddEdge(u, v);
  }
  return g;
}

}  // namespace ppr
