#include "graph/elimination.h"

#include <algorithm>

#include "common/check.h"

namespace ppr {
namespace {

// Copies g's adjacency into a mutable matrix for elimination games.
std::vector<uint8_t> AdjacencyMatrix(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<uint8_t> adj(static_cast<size_t>(n) * n, 0);
  for (const auto& [u, v] : g.Edges()) {
    adj[static_cast<size_t>(u) * n + v] = 1;
    adj[static_cast<size_t>(v) * n + u] = 1;
  }
  return adj;
}

// Shared skeleton for the greedy orders: repeatedly pick a vertex by
// `score` (lower is better) among non-keep-last vertices first, eliminate
// it with fill, and append it to the order.
template <typename ScoreFn>
EliminationOrder GreedyOrder(const Graph& g, const std::vector<int>& keep_last,
                             ScoreFn score) {
  const int n = g.num_vertices();
  std::vector<uint8_t> adj = AdjacencyMatrix(g);
  std::vector<uint8_t> eliminated(static_cast<size_t>(n), 0);
  std::vector<uint8_t> is_last(static_cast<size_t>(n), 0);
  for (int v : keep_last) {
    PPR_CHECK(v >= 0 && v < n);
    is_last[static_cast<size_t>(v)] = 1;
  }

  EliminationOrder order;
  order.reserve(static_cast<size_t>(n));
  // Two passes: first eliminate all non-keep-last vertices, then the rest.
  for (int pass = 0; pass < 2; ++pass) {
    for (;;) {
      int best = -1;
      int64_t best_score = 0;
      for (int v = 0; v < n; ++v) {
        if (eliminated[static_cast<size_t>(v)]) continue;
        if ((pass == 0) == (is_last[static_cast<size_t>(v)] != 0)) continue;
        int64_t s = score(adj, eliminated, v);
        if (best < 0 || s < best_score) {
          best = v;
          best_score = s;
        }
      }
      if (best < 0) break;
      // Eliminate `best`: connect its remaining neighbors pairwise.
      std::vector<int> nbrs;
      for (int u = 0; u < n; ++u) {
        if (!eliminated[static_cast<size_t>(u)] &&
            adj[static_cast<size_t>(best) * n + u]) {
          nbrs.push_back(u);
        }
      }
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          adj[static_cast<size_t>(nbrs[i]) * n + nbrs[j]] = 1;
          adj[static_cast<size_t>(nbrs[j]) * n + nbrs[i]] = 1;
        }
      }
      eliminated[static_cast<size_t>(best)] = 1;
      order.push_back(best);
    }
  }
  return order;
}

}  // namespace

std::vector<int> MaxCardinalityNumbering(const Graph& g,
                                         const std::vector<int>& initial,
                                         Rng* rng) {
  const int n = g.num_vertices();
  std::vector<uint8_t> numbered(static_cast<size_t>(n), 0);
  std::vector<int> weight(static_cast<size_t>(n), 0);
  std::vector<int> numbering;
  numbering.reserve(static_cast<size_t>(n));

  auto take = [&](int v) {
    numbered[static_cast<size_t>(v)] = 1;
    numbering.push_back(v);
    for (int u : g.Neighbors(v)) {
      if (!numbered[static_cast<size_t>(u)]) ++weight[static_cast<size_t>(u)];
    }
  };

  for (int v : initial) {
    PPR_CHECK(v >= 0 && v < n);
    if (!numbered[static_cast<size_t>(v)]) take(v);
  }

  while (static_cast<int>(numbering.size()) < n) {
    // Collect the unnumbered vertices of maximum weight.
    int best_weight = -1;
    std::vector<int> candidates;
    for (int v = 0; v < n; ++v) {
      if (numbered[static_cast<size_t>(v)]) continue;
      const int w = weight[static_cast<size_t>(v)];
      if (w > best_weight) {
        best_weight = w;
        candidates.clear();
      }
      if (w == best_weight) candidates.push_back(v);
    }
    const int pick =
        (rng != nullptr && candidates.size() > 1)
            ? candidates[static_cast<size_t>(
                  rng->NextBounded(candidates.size()))]
            : candidates.front();
    take(pick);
  }
  return numbering;
}

EliminationOrder McsEliminationOrder(const Graph& g,
                                     const std::vector<int>& keep_last,
                                     Rng* rng) {
  std::vector<int> numbering = MaxCardinalityNumbering(g, keep_last, rng);
  std::reverse(numbering.begin(), numbering.end());
  return numbering;
}

EliminationOrder MinDegreeOrder(const Graph& g,
                                const std::vector<int>& keep_last) {
  const int n = g.num_vertices();
  return GreedyOrder(
      g, keep_last,
      [n](const std::vector<uint8_t>& adj, const std::vector<uint8_t>& elim,
          int v) -> int64_t {
        int64_t deg = 0;
        for (int u = 0; u < n; ++u) {
          if (!elim[static_cast<size_t>(u)] &&
              adj[static_cast<size_t>(v) * n + u]) {
            ++deg;
          }
        }
        return deg;
      });
}

EliminationOrder MinFillOrder(const Graph& g,
                              const std::vector<int>& keep_last) {
  const int n = g.num_vertices();
  return GreedyOrder(
      g, keep_last,
      [n](const std::vector<uint8_t>& adj, const std::vector<uint8_t>& elim,
          int v) -> int64_t {
        std::vector<int> nbrs;
        for (int u = 0; u < n; ++u) {
          if (!elim[static_cast<size_t>(u)] &&
              adj[static_cast<size_t>(v) * n + u]) {
            nbrs.push_back(u);
          }
        }
        int64_t fill = 0;
        for (size_t i = 0; i < nbrs.size(); ++i) {
          for (size_t j = i + 1; j < nbrs.size(); ++j) {
            if (!adj[static_cast<size_t>(nbrs[i]) * n + nbrs[j]]) ++fill;
          }
        }
        return fill;
      });
}

int InducedWidth(const Graph& g, const EliminationOrder& order) {
  const int n = g.num_vertices();
  PPR_CHECK(static_cast<int>(order.size()) == n);
  std::vector<uint8_t> adj = AdjacencyMatrix(g);
  std::vector<uint8_t> eliminated(static_cast<size_t>(n), 0);
  std::vector<uint8_t> seen(static_cast<size_t>(n), 0);

  int width = 0;
  for (int v : order) {
    PPR_CHECK(v >= 0 && v < n);
    PPR_CHECK(!seen[static_cast<size_t>(v)]);  // must be a permutation
    seen[static_cast<size_t>(v)] = 1;
    std::vector<int> nbrs;
    for (int u = 0; u < n; ++u) {
      if (!eliminated[static_cast<size_t>(u)] && u != v &&
          adj[static_cast<size_t>(v) * n + u]) {
        nbrs.push_back(u);
      }
    }
    width = std::max(width, static_cast<int>(nbrs.size()));
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        adj[static_cast<size_t>(nbrs[i]) * n + nbrs[j]] = 1;
        adj[static_cast<size_t>(nbrs[j]) * n + nbrs[i]] = 1;
      }
    }
    eliminated[static_cast<size_t>(v)] = 1;
  }
  return width;
}

bool IsChordal(const Graph& g) {
  const int n = g.num_vertices();
  if (n == 0) return true;
  // Reverse MCS numbering is a perfect elimination order iff chordal:
  // zero fill when eliminating along it.
  std::vector<int> numbering = MaxCardinalityNumbering(g, {}, nullptr);
  std::vector<int> pos(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pos[static_cast<size_t>(numbering[i])] = i;
  // v's "earlier" neighbors (numbered before v) must form a clique with
  // v's earliest-numbered... standard check: for each v, the neighbors of v
  // numbered before v must all be adjacent to the latest-numbered of them.
  for (int v = 0; v < n; ++v) {
    std::vector<int> earlier;
    for (int u : g.Neighbors(v)) {
      if (pos[static_cast<size_t>(u)] < pos[static_cast<size_t>(v)]) {
        earlier.push_back(u);
      }
    }
    if (earlier.size() <= 1) continue;
    int latest = earlier[0];
    for (int u : earlier) {
      if (pos[static_cast<size_t>(u)] > pos[static_cast<size_t>(latest)]) {
        latest = u;
      }
    }
    for (int u : earlier) {
      if (u != latest && !g.HasEdge(u, latest)) return false;
    }
  }
  return true;
}

}  // namespace ppr
