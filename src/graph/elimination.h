#ifndef PPR_GRAPH_ELIMINATION_H_
#define PPR_GRAPH_ELIMINATION_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace ppr {

/// A vertex elimination order: `order[0]` is eliminated first. Bucket
/// elimination processes buckets from the highest-numbered variable down
/// (Section 5), i.e. it eliminates variables in the *reverse* of the
/// variable numbering; this type always stores elimination order.
using EliminationOrder = std::vector<int>;

/// Maximum-cardinality search numbering of Tarjan & Yannakakis [31], as
/// used in Section 5: vertices in `initial` are numbered first (the paper
/// numbers the target-schema variables first), then each next vertex
/// maximizes the number of edges to already-numbered vertices. Ties are
/// broken uniformly at random via `rng` when non-null, else by smallest
/// vertex id (deterministic runs for tests).
///
/// Returns the vertices in numbering order (first-numbered first).
std::vector<int> MaxCardinalityNumbering(const Graph& g,
                                         const std::vector<int>& initial,
                                         Rng* rng);

/// Elimination order induced by the MCS numbering: the reverse of
/// MaxCardinalityNumbering, so that the vertices in `keep_last` (free
/// variables) are eliminated last.
EliminationOrder McsEliminationOrder(const Graph& g,
                                     const std::vector<int>& keep_last,
                                     Rng* rng);

/// Greedy min-degree elimination order (classic bucket-elimination
/// heuristic; ablation baseline). Vertices in `keep_last` are only
/// eliminated once every other vertex is gone.
EliminationOrder MinDegreeOrder(const Graph& g,
                                const std::vector<int>& keep_last);

/// Greedy min-fill elimination order: each step eliminates the vertex
/// whose elimination adds the fewest fill edges (ablation baseline).
EliminationOrder MinFillOrder(const Graph& g,
                              const std::vector<int>& keep_last);

/// Plays the elimination game along `order` (connecting the not-yet-
/// eliminated neighbors of each eliminated vertex) and returns the induced
/// width: the maximum, over eliminated vertices, of the number of
/// not-yet-eliminated neighbors at elimination time. This equals the
/// maximum arity of the projected bucket relations r'_i in Section 5, and
/// under the best order equals treewidth (Theorem 2).
/// `order` must be a permutation of the vertices.
int InducedWidth(const Graph& g, const EliminationOrder& order);

/// True when `g` is chordal, tested via MCS + perfect-elimination-order
/// check (Tarjan & Yannakakis). Chordal graphs are exactly those whose MCS
/// elimination order has zero fill.
bool IsChordal(const Graph& g);

}  // namespace ppr

#endif  // PPR_GRAPH_ELIMINATION_H_
