#include "graph/tree_decomposition.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/strings.h"

namespace ppr {

int TreeDecomposition::width() const {
  int max_bag = 0;
  for (const auto& bag : bags) {
    max_bag = std::max(max_bag, static_cast<int>(bag.size()));
  }
  return max_bag - 1;
}

int TreeDecomposition::FindCoveringBag(const std::vector<int>& vs) const {
  for (int i = 0; i < num_bags(); ++i) {
    const auto& bag = bags[static_cast<size_t>(i)];
    bool covers = true;
    for (int v : vs) {
      if (!std::binary_search(bag.begin(), bag.end(), v)) {
        covers = false;
        break;
      }
    }
    if (covers) return i;
  }
  return -1;
}

std::vector<int> TreeDecomposition::AdjacentBags(int i) const {
  std::vector<int> out;
  for (const auto& [a, b] : edges) {
    if (a == i) out.push_back(b);
    if (b == i) out.push_back(a);
  }
  return out;
}

std::string TreeDecomposition::ToString() const {
  std::ostringstream out;
  out << "TreeDecomposition(width=" << width() << ")";
  for (int i = 0; i < num_bags(); ++i) {
    out << "\n  bag " << i << ": {"
        << StrJoin(bags[static_cast<size_t>(i)], ", ") << "}";
  }
  out << "\n  edges:";
  for (const auto& [a, b] : edges) out << " " << a << "-" << b;
  return out.str();
}

Status ValidateTreeDecomposition(const Graph& g, const TreeDecomposition& td) {
  const int n = g.num_vertices();
  const int b = td.num_bags();
  if (b == 0) {
    return n == 0 ? Status::Ok()
                  : Status::InvalidArgument("no bags for nonempty graph");
  }

  // Bags must be sorted vertex lists with in-range entries.
  for (const auto& bag : td.bags) {
    if (!std::is_sorted(bag.begin(), bag.end())) {
      return Status::InvalidArgument("bag not sorted");
    }
    if (std::adjacent_find(bag.begin(), bag.end()) != bag.end()) {
      return Status::InvalidArgument("bag has duplicate vertices");
    }
    for (int v : bag) {
      if (v < 0 || v >= n) return Status::InvalidArgument("bag vertex OOR");
    }
  }

  // Tree shape: b-1 edges, connected, endpoints valid.
  if (static_cast<int>(td.edges.size()) != b - 1) {
    return Status::InvalidArgument("tree must have num_bags - 1 edges");
  }
  std::vector<std::vector<int>> adj(static_cast<size_t>(b));
  for (const auto& [x, y] : td.edges) {
    if (x < 0 || x >= b || y < 0 || y >= b || x == y) {
      return Status::InvalidArgument("bad tree edge");
    }
    adj[static_cast<size_t>(x)].push_back(y);
    adj[static_cast<size_t>(y)].push_back(x);
  }
  std::vector<uint8_t> visited(static_cast<size_t>(b), 0);
  std::vector<int> stack = {0};
  visited[0] = 1;
  int reached = 1;
  while (!stack.empty()) {
    int x = stack.back();
    stack.pop_back();
    for (int y : adj[static_cast<size_t>(x)]) {
      if (!visited[static_cast<size_t>(y)]) {
        visited[static_cast<size_t>(y)] = 1;
        ++reached;
        stack.push_back(y);
      }
    }
  }
  if (reached != b) return Status::InvalidArgument("tree not connected");

  // Property (1): bags cover all vertices.
  std::vector<uint8_t> covered(static_cast<size_t>(n), 0);
  for (const auto& bag : td.bags) {
    for (int v : bag) covered[static_cast<size_t>(v)] = 1;
  }
  for (int v = 0; v < n; ++v) {
    if (!covered[static_cast<size_t>(v)]) {
      return Status::InvalidArgument("vertex not covered by any bag");
    }
  }

  // Property (2): every edge inside some bag.
  for (const auto& [u, v] : g.Edges()) {
    if (td.FindCoveringBag({u, v}) < 0) {
      return Status::InvalidArgument("edge not covered by any bag");
    }
  }

  // Property (3): bags containing v induce a connected subtree.
  for (int v = 0; v < n; ++v) {
    std::vector<uint8_t> holds(static_cast<size_t>(b), 0);
    int count = 0;
    int start = -1;
    for (int i = 0; i < b; ++i) {
      const auto& bag = td.bags[static_cast<size_t>(i)];
      if (std::binary_search(bag.begin(), bag.end(), v)) {
        holds[static_cast<size_t>(i)] = 1;
        ++count;
        start = i;
      }
    }
    if (count == 0) continue;
    std::vector<uint8_t> seen(static_cast<size_t>(b), 0);
    std::vector<int> st = {start};
    seen[static_cast<size_t>(start)] = 1;
    int hit = 1;
    while (!st.empty()) {
      int x = st.back();
      st.pop_back();
      for (int y : adj[static_cast<size_t>(x)]) {
        if (holds[static_cast<size_t>(y)] && !seen[static_cast<size_t>(y)]) {
          seen[static_cast<size_t>(y)] = 1;
          ++hit;
          st.push_back(y);
        }
      }
    }
    if (hit != count) {
      return Status::InvalidArgument("occurrence of a vertex not connected");
    }
  }
  return Status::Ok();
}

TreeDecomposition DecompositionFromOrder(const Graph& g,
                                         const EliminationOrder& order) {
  const int n = g.num_vertices();
  PPR_CHECK(static_cast<int>(order.size()) == n);
  TreeDecomposition td;
  if (n == 0) return td;

  // Play the elimination game, recording each vertex's bag.
  std::vector<uint8_t> adj(static_cast<size_t>(n) * n, 0);
  for (const auto& [u, v] : g.Edges()) {
    adj[static_cast<size_t>(u) * n + v] = 1;
    adj[static_cast<size_t>(v) * n + u] = 1;
  }
  std::vector<uint8_t> eliminated(static_cast<size_t>(n), 0);
  std::vector<int> elim_pos(static_cast<size_t>(n), -1);
  // bag_of[v] = index of the bag created when v was eliminated.
  std::vector<int> bag_of(static_cast<size_t>(n), -1);
  std::vector<std::vector<int>> later_nbrs(static_cast<size_t>(n));

  for (int step = 0; step < n; ++step) {
    const int v = order[static_cast<size_t>(step)];
    elim_pos[static_cast<size_t>(v)] = step;
    std::vector<int> nbrs;
    for (int u = 0; u < n; ++u) {
      if (!eliminated[static_cast<size_t>(u)] && u != v &&
          adj[static_cast<size_t>(v) * n + u]) {
        nbrs.push_back(u);
      }
    }
    later_nbrs[static_cast<size_t>(v)] = nbrs;
    std::vector<int> bag = nbrs;
    bag.push_back(v);
    std::sort(bag.begin(), bag.end());
    bag_of[static_cast<size_t>(v)] = static_cast<int>(td.bags.size());
    td.bags.push_back(std::move(bag));
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        adj[static_cast<size_t>(nbrs[i]) * n + nbrs[j]] = 1;
        adj[static_cast<size_t>(nbrs[j]) * n + nbrs[i]] = 1;
      }
    }
    eliminated[static_cast<size_t>(v)] = 1;
  }

  // Bag of v hangs off the bag of the first-eliminated later neighbor;
  // bags without later neighbors are component roots, chained together.
  std::vector<int> roots;
  for (int v = 0; v < n; ++v) {
    const auto& nbrs = later_nbrs[static_cast<size_t>(v)];
    if (nbrs.empty()) {
      roots.push_back(bag_of[static_cast<size_t>(v)]);
      continue;
    }
    int parent = nbrs[0];
    for (int u : nbrs) {
      if (elim_pos[static_cast<size_t>(u)] <
          elim_pos[static_cast<size_t>(parent)]) {
        parent = u;
      }
    }
    td.edges.emplace_back(bag_of[static_cast<size_t>(v)],
                          bag_of[static_cast<size_t>(parent)]);
  }
  for (size_t i = 1; i < roots.size(); ++i) {
    td.edges.emplace_back(roots[i - 1], roots[i]);
  }
  return td;
}

}  // namespace ppr
