#ifndef PPR_HYPER_HYPERGRAPH_H_
#define PPR_HYPER_HYPERGRAPH_H_

#include <vector>

#include "common/status.h"
#include "core/plan.h"
#include "query/conjunctive_query.h"

namespace ppr {

/// The hypergraph of a query: one hyperedge per atom, holding the atom's
/// distinct attributes. Acyclicity of this hypergraph is the classical
/// tractability frontier the paper builds on — Yannakakis's algorithm
/// [35] gives linear intermediate-size bounds for acyclic joins, and the
/// Tarjan-Yannakakis reference [31] the paper uses for MCS also covers
/// the acyclicity test implemented here.
class Hypergraph {
 public:
  /// Builds from explicit hyperedges (sorted internally).
  explicit Hypergraph(std::vector<std::vector<AttrId>> edges);

  /// One hyperedge per atom of `query`.
  static Hypergraph FromQuery(const ConjunctiveQuery& query);

  int num_edges() const { return static_cast<int>(edges_.size()); }
  /// Sorted attribute set of hyperedge `e`.
  const std::vector<AttrId>& edge(int e) const {
    return edges_[static_cast<size_t>(e)];
  }

 private:
  std::vector<std::vector<AttrId>> edges_;
};

/// Result of the GYO (Graham / Yu-Ozsoyoglu) reduction.
struct GyoResult {
  /// True when the hypergraph is alpha-acyclic: repeated ear removal
  /// empties it.
  bool acyclic = false;
  /// Edges in the order they were removed as ears (acyclic case: all of
  /// them, component roots last).
  std::vector<int> ear_order;
  /// parent[e] = the edge e was folded into, or -1 for component roots.
  std::vector<int> parent;
};

/// Runs the GYO reduction: repeatedly delete attributes private to a
/// single edge and fold edges that became subsets of another edge,
/// recording the fold target as the join-tree parent.
GyoResult GyoReduction(const Hypergraph& h);

/// True when the query's hypergraph is alpha-acyclic.
bool IsAcyclicQuery(const ConjunctiveQuery& query);

/// Yannakakis-style plan for an acyclic query: the GYO join tree becomes
/// a join-expression tree whose node projections keep exactly the
/// attributes shared with the parent (plus free variables) — so every
/// working label is contained in the union of two atoms' schemas, the
/// structural guarantee behind [35]'s linear intermediate bounds.
/// Combine with SemijoinReduce (exec/semijoin_pass.h) for the full
/// Yannakakis algorithm: after a full reduction, no intermediate result
/// can exceed (final answer size) x (largest relation).
/// Returns InvalidArgument for cyclic queries.
Result<Plan> AcyclicJoinTreePlan(const ConjunctiveQuery& query);

}  // namespace ppr

#endif  // PPR_HYPER_HYPERGRAPH_H_
