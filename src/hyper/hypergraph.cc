#include "hyper/hypergraph.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace ppr {

Hypergraph::Hypergraph(std::vector<std::vector<AttrId>> edges)
    : edges_(std::move(edges)) {
  for (auto& edge : edges_) {
    std::sort(edge.begin(), edge.end());
    edge.erase(std::unique(edge.begin(), edge.end()), edge.end());
  }
}

Hypergraph Hypergraph::FromQuery(const ConjunctiveQuery& query) {
  std::vector<std::vector<AttrId>> edges;
  edges.reserve(static_cast<size_t>(query.num_atoms()));
  for (const Atom& atom : query.atoms()) {
    edges.push_back(atom.DistinctAttrs());
  }
  return Hypergraph(std::move(edges));
}

GyoResult GyoReduction(const Hypergraph& h) {
  const int m = h.num_edges();
  GyoResult result;
  result.parent.assign(static_cast<size_t>(m), -1);

  // Working copies of the edges; removed edges become inactive.
  std::vector<std::vector<AttrId>> edges;
  edges.reserve(static_cast<size_t>(m));
  for (int e = 0; e < m; ++e) edges.push_back(h.edge(e));
  std::vector<uint8_t> active(static_cast<size_t>(m), 1);
  int active_count = m;

  bool changed = true;
  while (changed && active_count > 0) {
    changed = false;

    // Step 1: delete attributes occurring in exactly one active edge.
    std::map<AttrId, int> occurrences;
    for (int e = 0; e < m; ++e) {
      if (!active[static_cast<size_t>(e)]) continue;
      for (AttrId a : edges[static_cast<size_t>(e)]) occurrences[a]++;
    }
    for (int e = 0; e < m; ++e) {
      if (!active[static_cast<size_t>(e)]) continue;
      auto& edge = edges[static_cast<size_t>(e)];
      const size_t before = edge.size();
      edge.erase(std::remove_if(edge.begin(), edge.end(),
                                [&](AttrId a) {
                                  return occurrences.at(a) == 1;
                                }),
                 edge.end());
      if (edge.size() != before) changed = true;
    }

    // Step 2: fold one edge per pass — an emptied edge becomes a
    // component root; an edge contained in another folds into it.
    for (int e = 0; e < m; ++e) {
      if (!active[static_cast<size_t>(e)]) continue;
      const auto& ee = edges[static_cast<size_t>(e)];
      int target = -2;  // -2 = keep, -1 = root removal, >=0 = fold target
      if (ee.empty()) {
        target = -1;
      } else {
        for (int f = 0; f < m && target == -2; ++f) {
          if (f == e || !active[static_cast<size_t>(f)]) continue;
          const auto& ff = edges[static_cast<size_t>(f)];
          if (std::includes(ff.begin(), ff.end(), ee.begin(), ee.end())) {
            target = f;
          }
        }
      }
      if (target != -2) {
        active[static_cast<size_t>(e)] = 0;
        --active_count;
        result.parent[static_cast<size_t>(e)] = target;
        result.ear_order.push_back(e);
        changed = true;
        break;  // recompute occurrence counts before the next fold
      }
    }
  }

  result.acyclic = active_count == 0;
  return result;
}

bool IsAcyclicQuery(const ConjunctiveQuery& query) {
  return GyoReduction(Hypergraph::FromQuery(query)).acyclic;
}

namespace {

std::vector<AttrId> SortedTarget(const ConjunctiveQuery& query) {
  std::vector<AttrId> target = query.free_vars();
  std::sort(target.begin(), target.end());
  return target;
}

// Builds the join-expression node for atom `e`: its leaf joined with the
// nodes of all atoms folded into it, projecting to what the parent atom
// (or the target schema) still needs.
std::unique_ptr<PlanNode> BuildAtomNode(
    const ConjunctiveQuery& query,
    const std::vector<std::vector<int>>& folded_into, int e, int parent) {
  std::vector<std::unique_ptr<PlanNode>> children;
  children.push_back(MakeLeaf(query, e));
  for (int child : folded_into[static_cast<size_t>(e)]) {
    children.push_back(BuildAtomNode(query, folded_into, child, e));
  }

  std::vector<AttrId> working;
  for (const auto& c : children) {
    working.insert(working.end(), c->projected.begin(), c->projected.end());
  }
  std::sort(working.begin(), working.end());
  working.erase(std::unique(working.begin(), working.end()), working.end());

  // Keep attributes of the parent atom plus free variables: the GYO join
  // tree's connectedness property makes everything else dead here.
  std::vector<AttrId> keep;
  if (parent >= 0) {
    keep = query.atoms()[static_cast<size_t>(parent)].DistinctAttrs();
  }
  const std::vector<AttrId>& free = query.free_vars();
  keep.insert(keep.end(), free.begin(), free.end());
  std::sort(keep.begin(), keep.end());

  std::vector<AttrId> projected;
  for (AttrId a : working) {
    if (std::binary_search(keep.begin(), keep.end(), a)) {
      projected.push_back(a);
    }
  }
  return MakeJoin(std::move(children), std::move(projected));
}

}  // namespace

Result<Plan> AcyclicJoinTreePlan(const ConjunctiveQuery& query) {
  PPR_CHECK(query.num_atoms() > 0);
  const GyoResult gyo = GyoReduction(Hypergraph::FromQuery(query));
  if (!gyo.acyclic) {
    return Status::InvalidArgument(
        "query hypergraph is cyclic; use bucket elimination instead");
  }

  std::vector<std::vector<int>> folded_into(
      static_cast<size_t>(query.num_atoms()));
  std::vector<int> roots;
  for (int e = 0; e < query.num_atoms(); ++e) {
    const int p = gyo.parent[static_cast<size_t>(e)];
    if (p < 0) {
      roots.push_back(e);
    } else {
      folded_into[static_cast<size_t>(p)].push_back(e);
    }
  }
  PPR_CHECK(!roots.empty());

  std::vector<std::unique_ptr<PlanNode>> root_nodes;
  for (int r : roots) {
    root_nodes.push_back(BuildAtomNode(query, folded_into, r, -1));
  }
  std::vector<AttrId> target = SortedTarget(query);
  std::unique_ptr<PlanNode> root;
  if (root_nodes.size() == 1 && root_nodes.front()->projected == target) {
    root = std::move(root_nodes.front());
  } else {
    root = MakeJoin(std::move(root_nodes), target);
  }
  return Plan(std::move(root));
}

}  // namespace ppr
