#ifndef PPR_EXEC_EXECUTOR_H_
#define PPR_EXEC_EXECUTOR_H_

#include "common/status.h"
#include "common/types.h"
#include "core/plan.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"
#include "relational/exec_context.h"
#include "relational/relation.h"

namespace ppr {

class TraceSink;

/// Which join operator the executor uses at every internal node. The
/// paper fixed hash joins ("hash joins proved most efficient in our
/// setting"); kSortMerge exists to test that claim on identical plans.
enum class JoinAlgorithm {
  kHash,
  kSortMerge,
};

/// Knobs for one execution.
struct ExecutionOptions {
  /// Bound on total tuples produced (the deterministic timeout).
  Counter tuple_budget = kCounterMax;
  JoinAlgorithm join_algorithm = JoinAlgorithm::kHash;
  /// Span sink for per-operator tracing (obs/trace.h). Null defers to
  /// the process-wide PPR_TRACE sink; with both absent operators pay one
  /// branch each.
  TraceSink* trace = nullptr;
};

/// Outcome of executing one plan.
struct ExecutionResult {
  /// OK, or RESOURCE_EXHAUSTED when the tuple budget ran out ("timeout"),
  /// or an error from plan/query mismatch.
  Status status;
  /// The query answer, a relation over the target schema. Only meaningful
  /// when status is OK.
  Relation output;
  /// Work counters (tuples produced, widest intermediate, ...).
  ExecStats stats;
  /// Wall-clock execution time in seconds.
  double seconds = 0.0;

  /// The Boolean answer: nonempty result. Only meaningful when OK.
  bool nonempty() const { return !output.empty(); }
};

/// Evaluates `plan` bottom-up against `db`: leaves bind stored relations
/// to atom attributes, internal nodes hash-join their children left to
/// right and then apply the node's projection (with DISTINCT) when the
/// projected label is a strict subset of the working label.
///
/// Implemented by compiling to a PhysicalPlan (exec/physical_plan.h) and
/// executing it once; callers that run the same plan repeatedly should
/// compile once themselves and call PhysicalPlan::Execute per run.
///
/// `tuple_budget` bounds total tuples produced across all operators; when
/// exceeded the result carries RESOURCE_EXHAUSTED (the deterministic
/// stand-in for the paper's timeouts).
ExecutionResult ExecutePlan(const ConjunctiveQuery& query, const Plan& plan,
                            const Database& db,
                            Counter tuple_budget = kCounterMax);

/// ExecutePlan with full options (join algorithm, budget).
ExecutionResult ExecutePlanWithOptions(const ConjunctiveQuery& query,
                                       const Plan& plan, const Database& db,
                                       const ExecutionOptions& options);

/// Convenience oracle: evaluates the query with the straightforward plan
/// (no reordering, single final projection). Reference answer for tests.
ExecutionResult ExecuteStraightforward(const ConjunctiveQuery& query,
                                       const Database& db,
                                       Counter tuple_budget = kCounterMax);

}  // namespace ppr

#endif  // PPR_EXEC_EXECUTOR_H_
