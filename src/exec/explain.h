#ifndef PPR_EXEC_EXPLAIN_H_
#define PPR_EXEC_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/plan.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"
#include "relational/exec_context.h"

namespace ppr {

/// Per-node execution profile: what the textbook cardinality model
/// predicted versus what the engine actually materialized. The
/// estimate-vs-actual gap is exactly why the paper walks away from
/// cost-based optimization on these queries — on tiny domains with heavy
/// correlation, independence-based estimates drift by orders of
/// magnitude while the *structural* width bound stays exact.
struct NodeProfile {
  std::string label;       // "edge(x0, x1)" or "join"
  int depth = 0;           // root = 0
  int working_arity = 0;   // |L_w|
  int projected_arity = 0; // |L_p|
  double estimated_rows = 0.0;  // independence-assumption estimate
  int64_t actual_rows = 0;      // measured output rows
};

/// Result of profiling one plan execution.
struct ExplainResult {
  Status status;
  /// Pre-order (root first) node profiles.
  std::vector<NodeProfile> nodes;
  /// Aggregate work counters of the profiled run (tuples produced,
  /// largest intermediate, peak operator scratch+output bytes).
  ExecStats stats;
  /// Static-analysis verdict ("OK" or the first violation) when plan
  /// verification is enabled and a verifier is installed
  /// (exec/verify_hook.h); empty when verification did not run. A
  /// failing verdict also fails `status` — the plan is never executed.
  std::string verifier_verdict;

  /// Indented EXPLAIN ANALYZE-style rendering, followed by a summary
  /// line with the aggregate counters and, when verification ran, a
  /// verifier verdict line.
  std::string ToString() const;

  /// max(actual/estimate, estimate/actual) over profiled nodes (empty
  /// results smoothed to one row) — the worst-case multiplicative
  /// estimation error.
  double WorstEstimateRatio() const;
};

/// Executes `plan` while recording, for every node, the estimated output
/// cardinality (uniform attributes over a domain of `domain_size` values,
/// independent predicates — the model of optsearch/cost_model.h) and the
/// actual row count.
ExplainResult ExplainPlan(const ConjunctiveQuery& query, const Plan& plan,
                          const Database& db, double domain_size,
                          Counter tuple_budget = kCounterMax);

}  // namespace ppr

#endif  // PPR_EXEC_EXPLAIN_H_
