#ifndef PPR_EXEC_EXPLAIN_H_
#define PPR_EXEC_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/plan.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"
#include "relational/exec_context.h"

namespace ppr {

/// Per-node execution profile: what the textbook cardinality model
/// predicted versus what the engine actually materialized. The
/// estimate-vs-actual gap is exactly why the paper walks away from
/// cost-based optimization on these queries — on tiny domains with heavy
/// correlation, independence-based estimates drift by orders of
/// magnitude while the *structural* width bound stays exact.
struct NodeProfile {
  std::string label;       // "edge(x0, x1)" or "join"
  int depth = 0;           // root = 0
  int working_arity = 0;   // |L_w|
  int projected_arity = 0; // |L_p|
  double estimated_rows = 0.0;  // independence-assumption estimate
  int64_t actual_rows = 0;      // measured output rows

  // ANALYZE-mode actuals, aggregated from the node's operator spans
  // (obs/trace.h): total operator time, the largest single-operator
  // footprint (arena scratch + output bytes), and the widest operator
  // output actually materialized while evaluating the node. Zero when
  // the run was not analyzed.
  int64_t actual_ns = 0;
  int64_t actual_bytes = 0;
  int actual_max_arity = 0;

  // Static predictions from the width analyzer, via the `node_bounds`
  // verifier hook. predicted_arity_bound is -1 ("no prediction") when
  // verification is off, no verifier is installed, or the analyzer
  // attributed no operator to this node; predicted_rows_bound may be
  // +infinity when the analyzer proved no finite row bound.
  int predicted_arity_bound = -1;
  double predicted_rows_bound = 0.0;

  // True when the measured arity exceeds the predicted bound — the
  // analyzer's proof is wrong, which ANALYZE escalates to an error.
  bool arity_violation = false;

  // Morsel fan-out of a columnar ANALYZE run: the number of per-morsel
  // operator spans attributed to this node (each span covers one
  // ColumnBatch-wide morsel). 0 for row-path runs and for nodes whose
  // operators bypassed the morsel partition.
  int64_t morsel_fanout = 0;
};

/// Result of profiling one plan execution.
struct ExplainResult {
  Status status;
  /// Pre-order (root first) node profiles.
  std::vector<NodeProfile> nodes;
  /// Aggregate work counters of the profiled run (tuples produced,
  /// largest intermediate, peak operator scratch+output bytes).
  ExecStats stats;
  /// Static-analysis verdict ("OK" or the first violation) when plan
  /// verification is enabled and a verifier is installed
  /// (exec/verify_hook.h); empty when verification did not run. A
  /// failing verdict also fails `status` — the plan is never executed.
  /// An ANALYZE run whose measured arity beats a predicted bound also
  /// reports the violation here (and fails `status` with Internal).
  std::string verifier_verdict;

  /// Semantic-certification verdict ("OK" or the failure) when semantic
  /// verification (PPR_VERIFY_SEMANTICS / EnableSemanticVerification) is
  /// on and a verifier with a `semantic` hook is installed; empty when
  /// the tier did not run. A failure also fails `status`.
  std::string semantic_verdict;
  /// Wall time the semantic certification cost, in nanoseconds; -1 when
  /// the tier did not run. Rendered on the `-- verifier:` line so EXPLAIN
  /// shows what the proof costs next to what it proved.
  int64_t semantic_ns = -1;

  /// True when the run was profiled with per-operator spans (ANALYZE
  /// mode) and the per-node actuals above are meaningful.
  bool analyzed = false;

  /// Indented EXPLAIN ANALYZE-style rendering, followed by a summary
  /// line with the aggregate counters and, when verification ran, a
  /// verifier verdict line.
  std::string ToString() const;

  /// max(actual/estimate, estimate/actual) over profiled nodes (empty
  /// results smoothed to one row) — the worst-case multiplicative
  /// estimation error.
  double WorstEstimateRatio() const;
};

/// Executes `plan` while recording, for every node, the estimated output
/// cardinality (uniform attributes over a domain of `domain_size` values,
/// independent predicates — the model of optsearch/cost_model.h) and the
/// actual row count.
///
/// With `analyze` set (EXPLAIN ANALYZE) the run additionally records
/// per-operator spans into a private sink and annotates every node with
/// measured time, bytes, and widest materialized arity beside the width
/// analyzer's static predictions (when plan verification is enabled and
/// a verifier with a `node_bounds` hook is installed). A node whose
/// measured arity exceeds its predicted bound is flagged and the result
/// status becomes Internal: the static proof was wrong. The analyze=false
/// rendering is byte-identical whether or not process-wide tracing
/// (PPR_TRACE) is on.
///
/// With `columnar` set the run goes through the batch kernels of
/// relational/batch_ops.h (inline, env-default morsel size) instead of
/// the row kernels; ANALYZE then additionally reports each node's morsel
/// fan-out ("morsels=N") from the per-morsel spans. Estimates, actual
/// row counts, and the budget behavior are identical either way.
ExplainResult ExplainPlan(const ConjunctiveQuery& query, const Plan& plan,
                          const Database& db, double domain_size,
                          Counter tuple_budget = kCounterMax,
                          bool analyze = false, bool columnar = false);

}  // namespace ppr

#endif  // PPR_EXEC_EXPLAIN_H_
