#include "exec/executor.h"

#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "core/strategies.h"
#include "relational/ops.h"
#include "relational/sort_merge.h"

namespace ppr {
namespace {

// Bottom-up evaluation. Returns an empty relation once the context is
// exhausted; the caller turns that into RESOURCE_EXHAUSTED.
Relation EvalNode(const ConjunctiveQuery& query, const PlanNode* node,
                  const Database& db, JoinAlgorithm join_algorithm,
                  ExecContext& ctx) {
  if (node->IsLeaf()) {
    const Atom& atom = query.atoms()[static_cast<size_t>(node->atom_index)];
    Result<const Relation*> stored = db.Get(atom.relation);
    PPR_CHECK(stored.ok());  // Validate() runs before execution
    Relation bound = BindAtom(**stored, atom.args, ctx);
    if (node->Projects() && !ctx.exhausted()) {
      return Project(bound, node->projected, ctx);
    }
    return bound;
  }

  Relation acc =
      EvalNode(query, node->children.front().get(), db, join_algorithm, ctx);
  for (size_t i = 1; i < node->children.size() && !ctx.exhausted(); ++i) {
    Relation next =
        EvalNode(query, node->children[i].get(), db, join_algorithm, ctx);
    if (ctx.exhausted()) break;
    acc = join_algorithm == JoinAlgorithm::kSortMerge
              ? SortMergeJoin(acc, next, ctx)
              : NaturalJoin(acc, next, ctx);
  }
  if (node->Projects() && !ctx.exhausted()) {
    return Project(acc, node->projected, ctx);
  }
  return acc;
}

}  // namespace

ExecutionResult ExecutePlan(const ConjunctiveQuery& query, const Plan& plan,
                            const Database& db, Counter tuple_budget) {
  ExecutionOptions options;
  options.tuple_budget = tuple_budget;
  return ExecutePlanWithOptions(query, plan, db, options);
}

ExecutionResult ExecutePlanWithOptions(const ConjunctiveQuery& query,
                                       const Plan& plan, const Database& db,
                                       const ExecutionOptions& options) {
  ExecutionResult result;
  if (plan.empty()) {
    result.status = Status::InvalidArgument("empty plan");
    return result;
  }
  Status valid = query.Validate(db);
  if (!valid.ok()) {
    result.status = valid;
    return result;
  }

  ExecContext ctx(options.tuple_budget);
  WallTimer timer;
  Relation output =
      EvalNode(query, plan.root(), db, options.join_algorithm, ctx);
  result.seconds = timer.ElapsedSeconds();
  result.stats = ctx.stats();
  if (ctx.exhausted()) {
    result.status = Status::ResourceExhausted("tuple budget exceeded");
  } else {
    result.status = Status::Ok();
    result.output = std::move(output);
  }
  return result;
}

ExecutionResult ExecuteStraightforward(const ConjunctiveQuery& query,
                                       const Database& db,
                                       Counter tuple_budget) {
  return ExecutePlan(query, StraightforwardPlan(query), db, tuple_budget);
}

}  // namespace ppr
