#include "exec/executor.h"

#include <utility>

#include "core/strategies.h"
#include "exec/physical_plan.h"

namespace ppr {

ExecutionResult ExecutePlan(const ConjunctiveQuery& query, const Plan& plan,
                            const Database& db, Counter tuple_budget) {
  ExecutionOptions options;
  options.tuple_budget = tuple_budget;
  return ExecutePlanWithOptions(query, plan, db, options);
}

ExecutionResult ExecutePlanWithOptions(const ConjunctiveQuery& query,
                                       const Plan& plan, const Database& db,
                                       const ExecutionOptions& options) {
  Result<PhysicalPlan> compiled =
      PhysicalPlan::Compile(query, plan, db, options.join_algorithm);
  if (!compiled.ok()) {
    ExecutionResult result;
    result.status = compiled.status();
    return result;
  }
  return compiled->Execute(options.tuple_budget, options.trace);
}

ExecutionResult ExecuteStraightforward(const ConjunctiveQuery& query,
                                       const Database& db,
                                       Counter tuple_budget) {
  return ExecutePlan(query, StraightforwardPlan(query), db, tuple_budget);
}

}  // namespace ppr
