#ifndef PPR_EXEC_VERIFY_HOOK_H_
#define PPR_EXEC_VERIFY_HOOK_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "core/plan.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"

namespace ppr {

class PhysicalPlan;
struct MorselAccounting;

/// Static bounds the width analyzer proves for one plan node, in the
/// shared pre-order numbering (root = 0, node before its children,
/// children left to right). EXPLAIN ANALYZE prints these beside the
/// actuals and flags any run whose observed arity exceeds arity_bound —
/// a violated bound means the analyzer, not the engine, is wrong.
struct PlanNodeBound {
  /// Max arity of any operator output while evaluating the node
  /// (kUnbounded when the analyzer proved nothing).
  int arity_bound = kUnbounded;
  /// Upper bound on any operator's output rows at the node; +infinity
  /// when unbounded.
  double rows_bound = 0.0;

  static constexpr int kUnbounded = -1;
};

/// Verification callbacks the static-analysis layer installs into the
/// execution layer (exec cannot depend on analysis — analysis depends on
/// exec for the physical plan types — so the wiring is a registration).
/// When verification is enabled, PhysicalPlan::Compile runs `logical`
/// before and `compiled` after lowering and fails compilation on a
/// non-OK verdict; ExplainPlan runs `logical` and surfaces the verdict
/// in its rendering, and uses `node_bounds` for the predicted side of
/// EXPLAIN ANALYZE.
struct PlanVerifierHooks {
  std::function<Status(const ConjunctiveQuery&, const Plan&,
                       const Database&)>
      logical;
  std::function<Status(const ConjunctiveQuery&, const Plan&, const Database&,
                       const PhysicalPlan&)>
      compiled;
  /// Fills one PlanNodeBound per plan node, pre-order.
  std::function<Status(const ConjunctiveQuery&, const Plan&, const Database&,
                       std::vector<PlanNodeBound>*)>
      node_bounds;
  /// Validates the per-operator morsel accounting of one columnar run
  /// (exec/physical_plan.h's MorselAccounting): re-derives the batch
  /// schemas from the logical plan, checks each operator's per-morsel
  /// rows sum to its output, and checks outputs against the width
  /// analyzer's static bounds. The morsel driver (src/runtime) calls it
  /// after every morsel-driven run while verification is enabled.
  std::function<Status(const ConjunctiveQuery&, const Plan&, const Database&,
                       const MorselAccounting&)>
      morsel_accounting;
  /// Semantic translation validation (analysis/semantic/certify.h): a
  /// third verifier tier beyond structural checks — extracts the
  /// conjunctive query the plan *denotes* and proves it Chandra–Merlin
  /// equivalent to the original. `physical` is the compiled plan when one
  /// exists (PhysicalPlan::Compile) and null on logical-only paths
  /// (ExplainPlan). Gated independently by PPR_VERIFY_SEMANTICS /
  /// EnableSemanticVerification, so it composes with — but does not
  /// require — the structural tier.
  std::function<Status(const ConjunctiveQuery&, const Plan&, const Database&,
                       const PhysicalPlan* physical)>
      semantic;
};

/// Installs the hooks (replacing any previous ones). Safe to call while
/// compiles are running on other threads: the installed set is an
/// immutable snapshot swapped under a lock, so in-flight compiles keep
/// the hooks they already fetched. (Previously this rebound a bare
/// static struct that racing compiles read member-by-member — one of
/// the latent races the capability retrofit surfaced.)
void SetPlanVerifierHooks(PlanVerifierHooks hooks);

/// Removes the hooks.
void ClearPlanVerifierHooks();

/// The currently installed hook snapshot — never null; members are null
/// when none installed. Callers keep the snapshot alive for the
/// duration of one compile, so a concurrent Set/Clear cannot pull the
/// callbacks out from under them.
std::shared_ptr<const PlanVerifierHooks> GetPlanVerifierHooks();

/// Debug flag gating verification at compile/explain time. Starts ON
/// when the environment sets PPR_VERIFY_PLANS to anything but "0",
/// OFF otherwise; toggled programmatically by tests and tools (an
/// atomic, so toggling while worker threads compile is a stale read at
/// worst, never a torn one). Hooks only fire when both installed and
/// enabled.
void EnablePlanVerification(bool on);
bool PlanVerificationEnabled();

/// Independent gate for the semantic tier. Starts ON when the environment
/// sets PPR_VERIFY_SEMANTICS to anything but "0"; toggled
/// programmatically like EnablePlanVerification. The `semantic` hook
/// fires when installed and this gate is on, regardless of the
/// structural gate — semantic certification is meaningful (and much
/// stronger) on its own.
void EnableSemanticVerification(bool on);
bool SemanticVerificationEnabled();

}  // namespace ppr

#endif  // PPR_EXEC_VERIFY_HOOK_H_
