#ifndef PPR_EXEC_VERIFY_HOOK_H_
#define PPR_EXEC_VERIFY_HOOK_H_

#include <functional>

#include "common/status.h"
#include "core/plan.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"

namespace ppr {

class PhysicalPlan;

/// Verification callbacks the static-analysis layer installs into the
/// execution layer (exec cannot depend on analysis — analysis depends on
/// exec for the physical plan types — so the wiring is a registration).
/// When verification is enabled, PhysicalPlan::Compile runs `logical`
/// before and `compiled` after lowering and fails compilation on a
/// non-OK verdict; ExplainPlan runs `logical` and surfaces the verdict
/// in its rendering.
struct PlanVerifierHooks {
  std::function<Status(const ConjunctiveQuery&, const Plan&,
                       const Database&)>
      logical;
  std::function<Status(const ConjunctiveQuery&, const Plan&, const Database&,
                       const PhysicalPlan&)>
      compiled;
};

/// Installs the hooks (replacing any previous ones).
void SetPlanVerifierHooks(PlanVerifierHooks hooks);

/// Removes the hooks.
void ClearPlanVerifierHooks();

/// Currently installed hooks (members are null when none installed).
const PlanVerifierHooks& GetPlanVerifierHooks();

/// Debug flag gating verification at compile/explain time. Starts ON
/// when the environment sets PPR_VERIFY_PLANS to anything but "0",
/// OFF otherwise; toggled programmatically by tests and tools. Hooks
/// only fire when both installed and enabled.
void EnablePlanVerification(bool on);
bool PlanVerificationEnabled();

}  // namespace ppr

#endif  // PPR_EXEC_VERIFY_HOOK_H_
