#ifndef PPR_EXEC_PHYSICAL_PLAN_H_
#define PPR_EXEC_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "common/types.h"
#include "core/plan.h"
#include "exec/executor.h"
#include "query/conjunctive_query.h"
#include "relational/batch_ops.h"
#include "relational/database.h"
#include "relational/ops.h"
#include "relational/relation.h"

namespace ppr {

class MetricsRegistry;
class TraceSink;

/// One logical plan node lowered to physical form: stored-relation
/// pointers, scan bindings, join column maps, and projection masks are
/// all resolved at compile time, so execution never touches schemas,
/// attribute ids, or the catalog.
struct PhysicalNode {
  /// Pre-order index of the logical node this was lowered from (root = 0,
  /// node before its children, children left to right) — the numbering
  /// shared with ExplainResult::nodes and with trace spans' node_id.
  int32_t node_id = -1;

  /// Leaf: the stored relation captured from the database, plus the atom
  /// binding (rename / repeated-attribute selection).
  const Relation* stored = nullptr;
  ScanSpec scan;

  /// Internal: children are folded left to right; joins[i-1] holds the
  /// precomputed column maps for (acc after children[0..i-1]) |><|
  /// children[i]. The accumulated schema is static, so every fold step
  /// compiles exactly once.
  std::vector<std::unique_ptr<PhysicalNode>> children;
  std::vector<JoinSpec> joins;

  /// Trailing projection for nodes whose projected label is a strict
  /// subset of the working label.
  bool has_project = false;
  ProjectSpec project;

  /// Schema of this node's output relation.
  Schema output_schema;

  bool IsLeaf() const { return children.empty(); }
};

/// Operator kinds appearing in a columnar run's morsel accounting.
/// Mirrors the four kernels without pulling the obs tracing types into
/// the execution API.
enum class MorselOp : uint8_t { kScan = 0, kJoin = 1, kProject = 2 };

/// Row accounting of one columnar kernel invocation: the per-morsel
/// emitted row counts (morsel-index order) and the output they add up
/// to. The invariant every entry must satisfy — sum(morsel_rows) ==
/// output_rows — is what the `morsel_accounting` verifier hook
/// (exec/verify_hook.h) checks against the width analyzer's static
/// bounds after a morsel-driven run.
struct MorselOpAccount {
  /// Pre-order plan-node id the operator ran for.
  int32_t node_id = -1;
  MorselOp op = MorselOp::kScan;
  /// Output arity of the operator (its batch schema width).
  int arity = 0;
  /// Output rows materialized (post budget truncation).
  int64_t output_rows = 0;
  /// Rows each morsel contributed, in morsel-index order. Degenerate
  /// operators that bypass the morsel partition (nullary schemas,
  /// sort-merge joins, Boolean projections) report one pseudo morsel
  /// holding the whole output, or none when the output is empty.
  std::vector<int64_t> morsel_rows;
};

/// Per-operator accounting of one columnar run, in execution order.
struct MorselAccounting {
  std::vector<MorselOpAccount> ops;
};

/// A plan compiled once against (query, plan, database) and executable
/// many times. Compilation precomputes, per node, the output schema,
/// build/probe key columns, payload copy maps, and projection masks;
/// Execute() is then pure data movement through the flat-hash kernels of
/// relational/ops.h, with operator scratch bump-allocated from an arena
/// whose blocks are recycled across operators *and* across runs.
///
/// The logical plan's semantics are untouched: Execute() performs the
/// same operators in the same order with the same budget/statistics
/// behavior as the seed interpreter, so tuples_produced,
/// max_intermediate_arity, and the answer relation are identical.
///
/// The database must outlive the physical plan (leaves capture pointers
/// to its stored relations); re-Put-ing a relation invalidates compiled
/// plans against it.
class PhysicalPlan {
 public:
  PhysicalPlan(PhysicalPlan&&) = default;
  PhysicalPlan& operator=(PhysicalPlan&&) = default;
  PhysicalPlan(const PhysicalPlan&) = delete;
  PhysicalPlan& operator=(const PhysicalPlan&) = delete;

  /// Compiles `plan` for `query` against `db`. Fails with InvalidArgument
  /// on an empty plan and propagates query/database validation errors.
  static Result<PhysicalPlan> Compile(
      const ConjunctiveQuery& query, const Plan& plan, const Database& db,
      JoinAlgorithm join_algorithm = JoinAlgorithm::kHash);

  /// Runs the compiled plan under `tuple_budget`. Scratch memory from
  /// prior runs is reused, so steady-state executions make no heap
  /// allocations outside the output relations.
  ///
  /// Operator spans are recorded into `trace` when non-null, otherwise
  /// into the process-wide sink when PPR_TRACE is enabled
  /// (obs/trace.h); with both absent the kernels pay one branch each and
  /// the run leaves no other observability residue. Traced runs also
  /// publish their ExecStats and per-span histograms to GlobalMetrics(),
  /// and refresh the PPR_TRACE artifacts when the global sink was used.
  ExecutionResult Execute(Counter tuple_budget = kCounterMax,
                          TraceSink* trace = nullptr);

  /// Const execution for a plan shared across threads (the plan cache of
  /// src/runtime hands one compiled plan to many workers). The caller
  /// supplies the scratch arena — each worker owns its own, reused across
  /// jobs and Reset() here per run; nullptr falls back to a private
  /// per-run arena. Nothing in the plan is mutated, so any number of
  /// threads may ExecuteShared the same plan concurrently as long as each
  /// passes its own arena/trace/metrics.
  ///
  /// Observability stays explicit and thread-local: spans go to `trace`
  /// when non-null (never to the process-wide sink), per-run stats (and,
  /// when traced, span histograms) publish into `metrics` when non-null
  /// (never to GlobalMetrics()), and no trace artifacts are flushed.
  ExecutionResult ExecuteShared(ExecArena* arena,
                                Counter tuple_budget = kCounterMax,
                                TraceSink* trace = nullptr,
                                MetricsRegistry* metrics = nullptr) const;

  /// Columnar execution through the batch kernels of
  /// relational/batch_ops.h, inline on the calling thread (a default
  /// MorselExec). Oracle-equal to Execute(): same answer relation, same
  /// ExecStats except peak_bytes, same budget behavior. Observability
  /// resolution matches Execute() (explicit sink, else PPR_TRACE).
  ExecutionResult ExecuteColumnar(Counter tuple_budget = kCounterMax,
                                  TraceSink* trace = nullptr);

  /// Morsel-driven columnar execution — the ExecuteShared of the batch
  /// world, with the same caller-owned arena/trace/metrics design, plus
  /// the MorselExec that decides how morsels run (the morsel driver of
  /// src/runtime installs a ThreadPool-backed parallel_for and
  /// per-worker arenas; the default runs inline). For a fixed morsel
  /// size the answer relation and every merged statistic are
  /// byte-identical across worker counts. When `accounting` is non-null
  /// it receives one MorselOpAccount per kernel invocation, in
  /// execution order, for the morsel-accounting verifier hook and the
  /// EXPLAIN ANALYZE fan-out report.
  ExecutionResult ExecuteMorsel(const MorselExec& mx, ExecArena* arena,
                                Counter tuple_budget = kCounterMax,
                                TraceSink* trace = nullptr,
                                MetricsRegistry* metrics = nullptr,
                                MorselAccounting* accounting = nullptr) const;

  /// Schema of the answer relation (the root's projected label).
  const Schema& output_schema() const { return root_->output_schema; }

  /// Number of physical nodes (same shape as the logical plan).
  int NumNodes() const;

  /// Root of the compiled node tree, for static analysis and explain
  /// tooling. The mutable accessor exists for plan-mutation tests that
  /// corrupt compiled plans to exercise the verifier.
  const PhysicalNode& root() const { return *root_; }
  PhysicalNode& mutable_root() { return *root_; }

 private:
  PhysicalPlan(std::unique_ptr<PhysicalNode> root,
               JoinAlgorithm join_algorithm)
      : root_(std::move(root)), join_algorithm_(join_algorithm) {}

  std::unique_ptr<PhysicalNode> root_;
  JoinAlgorithm join_algorithm_;
  /// Scratch recycled across Execute() calls.
  ExecArena arena_;
};

}  // namespace ppr

#endif  // PPR_EXEC_PHYSICAL_PLAN_H_
