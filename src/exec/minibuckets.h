#ifndef PPR_EXEC_MINIBUCKETS_H_
#define PPR_EXEC_MINIBUCKETS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"
#include "relational/exec_context.h"

namespace ppr {

/// Outcome of a mini-bucket run. Mini-bucket elimination (Dechter [12],
/// cited as future work in Section 7) is bucket elimination with bounded
/// bucket joins: a bucket whose relations would exceed the arity bound is
/// split into "mini-buckets" that are joined and projected separately.
/// The result is a *relaxation* — a superset of the true projection — so:
///  - an empty relaxed answer soundly proves the true answer empty;
///  - a nonempty relaxed answer is inconclusive.
struct MiniBucketResult {
  Status status;  // OK or RESOURCE_EXHAUSTED
  /// True when the relaxation came out empty: the query answer is
  /// certainly empty (e.g. the graph is certainly not 3-colorable).
  bool proven_empty = false;
  /// The arity bound actually used.
  int i_bound = 0;
  /// Number of buckets that had to be split.
  int buckets_split = 0;
  ExecStats stats;
};

/// Runs mini-bucket elimination with arity bound `i_bound` along the
/// given variable numbering (free variables first, as in Section 5).
/// With i_bound >= the bucket-elimination induced width, no bucket is
/// split and the decision is exact.
MiniBucketResult MiniBucketEliminate(const ConjunctiveQuery& query,
                                     const Database& db,
                                     const std::vector<AttrId>& numbering,
                                     int i_bound,
                                     Counter tuple_budget = kCounterMax);

/// Convenience wrapper using the MCS numbering of the join graph.
MiniBucketResult MiniBucketEliminateMcs(const ConjunctiveQuery& query,
                                        const Database& db, int i_bound,
                                        Rng* rng,
                                        Counter tuple_budget = kCounterMax);

}  // namespace ppr

#endif  // PPR_EXEC_MINIBUCKETS_H_
