#include "exec/semijoin_pass.h"

#include <string>

#include "common/check.h"
#include "common/mutex.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/ops.h"

namespace ppr {

SemijoinPassResult SemijoinReduce(const ConjunctiveQuery& query,
                                  const Database& db, int max_rounds) {
  SemijoinPassResult out;
  out.status = query.Validate(db);
  if (!out.status.ok()) return out;
  const int m = query.num_atoms();
  PPR_CHECK(m > 0);

  ExecContext ctx;
  ctx.set_tracer(GlobalTraceSinkIfEnabled());

  // Materialize each atom as its own relation over the atom's attributes.
  std::vector<Relation> relations;
  relations.reserve(static_cast<size_t>(m));
  for (const Atom& atom : query.atoms()) {
    const Relation* stored = *db.Get(atom.relation);
    relations.push_back(BindAtom(*stored, atom.args, ctx));
  }

  // Atoms that share at least one attribute exchange semijoins. A
  // semijoin preserves its target's schema, so the key-column maps are
  // invariant across fixpoint rounds — compile each direction's spec
  // once here instead of re-deriving it every round.
  struct Reduction {
    int target;
    int filter;
    SemiJoinSpec spec;
  };
  std::vector<Reduction> reductions;
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      const Schema& si = relations[static_cast<size_t>(i)].schema();
      const Schema& sj = relations[static_cast<size_t>(j)].schema();
      if (si.CommonAttrs(sj).empty()) continue;
      reductions.push_back({i, j, PlanSemiJoin(si, sj)});
      reductions.push_back({j, i, PlanSemiJoin(sj, si)});
    }
  }

  // Fixpoint: keep running the semijoin program until a pass removes
  // nothing (or the round bound is hit).
  for (int round = 0; round < max_rounds; ++round) {
    Counter removed_this_round = 0;
    for (const Reduction& r : reductions) {
      Relation& target = relations[static_cast<size_t>(r.target)];
      const Relation& filter = relations[static_cast<size_t>(r.filter)];
      const int64_t before = target.size();
      target = SemiJoinFiltered(target, filter, r.spec, ctx);
      removed_this_round += before - target.size();
    }
    out.tuples_removed += removed_this_round;
    if (removed_this_round == 0) break;
  }
  // The kernel counts its own invocations now (ExecStats::num_semijoins);
  // report the same number so the two views cannot drift.
  out.semijoins_performed = ctx.stats().num_semijoins;
  if (ctx.tracer() != nullptr) {
    MutexLock lock(GlobalObsMutex());
    ctx.stats().PublishTo(&GlobalMetrics());
  }

  // Rewrite the query so atom i reads its reduced relation; attribute
  // order of the new relation is the atom's distinct-attribute order, so
  // the rewritten atom lists exactly those attributes (repeats are
  // already folded into the reduced relation).
  for (int i = 0; i < m; ++i) {
    const std::string name = "atom" + std::to_string(i);
    if (relations[static_cast<size_t>(i)].empty()) out.proven_empty = true;
    Atom atom;
    atom.relation = name;
    atom.args = relations[static_cast<size_t>(i)].schema().attrs();
    out.query.AddAtom(std::move(atom));
    out.db.Put(name, std::move(relations[static_cast<size_t>(i)]));
  }
  out.query.SetFreeVars(query.free_vars());
  return out;
}

}  // namespace ppr
