#include "exec/semijoin_pass.h"

#include <string>

#include "common/check.h"
#include "relational/ops.h"

namespace ppr {

SemijoinPassResult SemijoinReduce(const ConjunctiveQuery& query,
                                  const Database& db, int max_rounds) {
  SemijoinPassResult out;
  out.status = query.Validate(db);
  if (!out.status.ok()) return out;
  const int m = query.num_atoms();
  PPR_CHECK(m > 0);

  ExecContext ctx;

  // Materialize each atom as its own relation over the atom's attributes.
  std::vector<Relation> relations;
  relations.reserve(static_cast<size_t>(m));
  for (const Atom& atom : query.atoms()) {
    const Relation* stored = *db.Get(atom.relation);
    relations.push_back(BindAtom(*stored, atom.args, ctx));
  }

  // Atoms that share at least one attribute exchange semijoins.
  std::vector<std::pair<int, int>> overlapping;
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      if (!relations[static_cast<size_t>(i)]
               .schema()
               .CommonAttrs(relations[static_cast<size_t>(j)].schema())
               .empty()) {
        overlapping.emplace_back(i, j);
      }
    }
  }

  // Fixpoint: keep running the semijoin program until a pass removes
  // nothing (or the round bound is hit).
  for (int round = 0; round < max_rounds; ++round) {
    Counter removed_this_round = 0;
    for (const auto& [i, j] : overlapping) {
      for (const auto& [from, to] :
           {std::pair<int, int>{j, i}, std::pair<int, int>{i, j}}) {
        Relation& target = relations[static_cast<size_t>(to)];
        const Relation& filter = relations[static_cast<size_t>(from)];
        const int64_t before = target.size();
        target = SemiJoin(target, filter, ctx);
        out.semijoins_performed++;
        removed_this_round += before - target.size();
      }
    }
    out.tuples_removed += removed_this_round;
    if (removed_this_round == 0) break;
  }

  // Rewrite the query so atom i reads its reduced relation; attribute
  // order of the new relation is the atom's distinct-attribute order, so
  // the rewritten atom lists exactly those attributes (repeats are
  // already folded into the reduced relation).
  for (int i = 0; i < m; ++i) {
    const std::string name = "atom" + std::to_string(i);
    if (relations[static_cast<size_t>(i)].empty()) out.proven_empty = true;
    Atom atom;
    atom.relation = name;
    atom.args = relations[static_cast<size_t>(i)].schema().attrs();
    out.query.AddAtom(std::move(atom));
    out.db.Put(name, std::move(relations[static_cast<size_t>(i)]));
  }
  out.query.SetFreeVars(query.free_vars());
  return out;
}

}  // namespace ppr
