#include "exec/explain.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "exec/verify_hook.h"
#include "relational/exec_context.h"
#include "relational/ops.h"

namespace ppr {
namespace {

// Estimation state for a subtree: union of attributes and the product of
// atom selectivities below it.
struct Estimate {
  std::vector<AttrId> attrs;  // sorted
  double selectivity = 1.0;
};

// Estimated rows of a relation over `projected` given the subtree's full
// attribute set and accumulated selectivity: the full join has
// domain^|attrs| * selectivity rows; projecting cannot exceed
// domain^|projected|.
double EstimateRows(const Estimate& est, size_t projected_arity,
                    double domain) {
  const double full =
      std::pow(domain, static_cast<double>(est.attrs.size())) *
      est.selectivity;
  const double cap = std::pow(domain, static_cast<double>(projected_arity));
  return std::min(full, cap);
}

// Recursive profiled evaluation; appends this node's profile (pre-order)
// and returns its output relation plus estimation state.
Relation EvalProfiled(const ConjunctiveQuery& query, const PlanNode* node,
                      const Database& db, double domain, int depth,
                      ExecContext& ctx, std::vector<NodeProfile>* out,
                      Estimate* est) {
  const size_t my_index = out->size();
  out->push_back(NodeProfile{});

  Relation result;
  if (node->IsLeaf()) {
    const Atom& atom = query.atoms()[static_cast<size_t>(node->atom_index)];
    const Relation* stored = *db.Get(atom.relation);
    est->attrs = node->working;
    est->selectivity =
        static_cast<double>(stored->size()) /
        std::pow(domain, static_cast<double>(atom.args.size()));
    result = BindAtom(*stored, atom.args, ctx);
    if (node->Projects() && !ctx.exhausted()) {
      result = Project(result, node->projected, ctx);
    }
    (*out)[my_index].label = atom.ToString();
  } else {
    Estimate acc_est;
    Relation acc;
    bool first = true;
    for (const auto& child : node->children) {
      if (ctx.exhausted()) break;
      Estimate child_est;
      Relation child_rel = EvalProfiled(query, child.get(), db, domain,
                                        depth + 1, ctx, out, &child_est);
      if (first) {
        acc = std::move(child_rel);
        acc_est = std::move(child_est);
        first = false;
      } else {
        if (ctx.exhausted()) break;
        acc = NaturalJoin(acc, child_rel, ctx);
        std::vector<AttrId> merged;
        std::set_union(acc_est.attrs.begin(), acc_est.attrs.end(),
                       child_est.attrs.begin(), child_est.attrs.end(),
                       std::back_inserter(merged));
        acc_est.attrs = std::move(merged);
        acc_est.selectivity *= child_est.selectivity;
      }
    }
    if (node->Projects() && !ctx.exhausted()) {
      acc = Project(acc, node->projected, ctx);
    }
    result = std::move(acc);
    *est = std::move(acc_est);
    (*out)[my_index].label = "join";
  }

  NodeProfile& profile = (*out)[my_index];
  profile.depth = depth;
  profile.working_arity = static_cast<int>(node->working.size());
  profile.projected_arity = static_cast<int>(node->projected.size());
  profile.estimated_rows = EstimateRows(*est, node->projected.size(), domain);
  profile.actual_rows = ctx.exhausted() ? -1 : result.size();
  return result;
}

}  // namespace

std::string ExplainResult::ToString() const {
  std::ostringstream out;
  for (const NodeProfile& p : nodes) {
    out << std::string(static_cast<size_t>(p.depth) * 2, ' ') << p.label
        << "  [arity " << p.working_arity << "->" << p.projected_arity
        << "]  est=" << p.estimated_rows << " actual=" << p.actual_rows
        << "\n";
  }
  out << "-- tuples_produced=" << stats.tuples_produced
      << " max_intermediate_rows=" << stats.max_intermediate_rows
      << " peak_bytes=" << stats.peak_bytes << "\n";
  if (!verifier_verdict.empty()) {
    out << "-- verifier: " << verifier_verdict << "\n";
  }
  return out.str();
}

double ExplainResult::WorstEstimateRatio() const {
  double worst = 1.0;
  for (const NodeProfile& p : nodes) {
    if (p.actual_rows < 0 || p.estimated_rows <= 0) continue;  // truncated
    // Smooth empty results to one row so "predicted rows, got none" —
    // the signature failure of independence estimates on correlated
    // queries — registers as a finite but large ratio.
    const double actual = std::max(1.0, static_cast<double>(p.actual_rows));
    const double estimate = std::max(1.0, p.estimated_rows);
    worst = std::max(worst, std::max(actual / estimate, estimate / actual));
  }
  return worst;
}

ExplainResult ExplainPlan(const ConjunctiveQuery& query, const Plan& plan,
                          const Database& db, double domain_size,
                          Counter tuple_budget) {
  ExplainResult result;
  PPR_CHECK(domain_size >= 1.0);
  if (plan.empty()) {
    result.status = Status::InvalidArgument("empty plan");
    return result;
  }
  result.status = query.Validate(db);
  if (!result.status.ok()) return result;

  // Surface the static-analysis verdict when verification is enabled; a
  // rejected plan is reported, not executed.
  const PlanVerifierHooks& hooks = GetPlanVerifierHooks();
  if (PlanVerificationEnabled() && hooks.logical) {
    Status verdict = hooks.logical(query, plan, db);
    result.verifier_verdict = verdict.ok() ? "OK" : verdict.ToString();
    if (!verdict.ok()) {
      result.status = verdict;
      return result;
    }
  }

  ExecContext ctx(tuple_budget);
  Estimate est;
  EvalProfiled(query, plan.root(), db, domain_size, 0, ctx, &result.nodes,
               &est);
  result.stats = ctx.stats();
  if (ctx.exhausted()) {
    result.status = Status::ResourceExhausted("tuple budget exceeded");
  }
  return result;
}

}  // namespace ppr
