#include "exec/explain.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "exec/verify_hook.h"
#include "obs/trace.h"
#include "relational/batch_ops.h"
#include "relational/exec_context.h"
#include "relational/ops.h"

namespace ppr {
namespace {

// Estimation state for a subtree: union of attributes and the product of
// atom selectivities below it.
struct Estimate {
  std::vector<AttrId> attrs;  // sorted
  double selectivity = 1.0;
};

// Estimated rows of a relation over `projected` given the subtree's full
// attribute set and accumulated selectivity: the full join has
// domain^|attrs| * selectivity rows; projecting cannot exceed
// domain^|projected|.
double EstimateRows(const Estimate& est, size_t projected_arity,
                    double domain) {
  const double full =
      std::pow(domain, static_cast<double>(est.attrs.size())) *
      est.selectivity;
  const double cap = std::pow(domain, static_cast<double>(projected_arity));
  return std::min(full, cap);
}

// Recursive profiled evaluation; appends this node's profile (pre-order)
// and returns its output relation plus estimation state. A non-null
// `mx` routes every kernel through its columnar batch variant.
Relation EvalProfiled(const ConjunctiveQuery& query, const PlanNode* node,
                      const Database& db, double domain, int depth,
                      ExecContext& ctx, const MorselExec* mx,
                      std::vector<NodeProfile>* out, Estimate* est) {
  const size_t my_index = out->size();
  out->push_back(NodeProfile{});

  Relation result;
  // Attribute this node's operator spans to its pre-order index (the
  // recursion below retargets it for the children, so it is restored
  // before every kernel call on this node's behalf).
  ctx.set_trace_node(static_cast<int32_t>(my_index));
  if (node->IsLeaf()) {
    const Atom& atom = query.atoms()[static_cast<size_t>(node->atom_index)];
    const Relation* stored = *db.Get(atom.relation);
    est->attrs = node->working;
    est->selectivity =
        static_cast<double>(stored->size()) /
        std::pow(domain, static_cast<double>(atom.args.size()));
    result = mx != nullptr ? BindAtomColumnar(*stored, atom.args, ctx, *mx)
                           : BindAtom(*stored, atom.args, ctx);
    if (node->Projects() && !ctx.exhausted()) {
      result = mx != nullptr
                   ? ProjectColumnar(result, node->projected, ctx, *mx)
                   : Project(result, node->projected, ctx);
    }
    (*out)[my_index].label = atom.ToString();
  } else {
    Estimate acc_est;
    Relation acc;
    bool first = true;
    for (const auto& child : node->children) {
      if (ctx.exhausted()) break;
      Estimate child_est;
      Relation child_rel = EvalProfiled(query, child.get(), db, domain,
                                        depth + 1, ctx, mx, out, &child_est);
      if (first) {
        acc = std::move(child_rel);
        acc_est = std::move(child_est);
        first = false;
      } else {
        if (ctx.exhausted()) break;
        ctx.set_trace_node(static_cast<int32_t>(my_index));
        acc = mx != nullptr ? NaturalJoinColumnar(acc, child_rel, ctx, *mx)
                            : NaturalJoin(acc, child_rel, ctx);
        std::vector<AttrId> merged;
        std::set_union(acc_est.attrs.begin(), acc_est.attrs.end(),
                       child_est.attrs.begin(), child_est.attrs.end(),
                       std::back_inserter(merged));
        acc_est.attrs = std::move(merged);
        acc_est.selectivity *= child_est.selectivity;
      }
    }
    if (node->Projects() && !ctx.exhausted()) {
      ctx.set_trace_node(static_cast<int32_t>(my_index));
      acc = mx != nullptr ? ProjectColumnar(acc, node->projected, ctx, *mx)
                          : Project(acc, node->projected, ctx);
    }
    result = std::move(acc);
    *est = std::move(acc_est);
    (*out)[my_index].label = "join";
  }

  NodeProfile& profile = (*out)[my_index];
  profile.depth = depth;
  profile.working_arity = static_cast<int>(node->working.size());
  profile.projected_arity = static_cast<int>(node->projected.size());
  profile.estimated_rows = EstimateRows(*est, node->projected.size(), domain);
  profile.actual_rows = ctx.exhausted() ? -1 : result.size();
  return result;
}

}  // namespace

std::string ExplainResult::ToString() const {
  std::ostringstream out;
  for (const NodeProfile& p : nodes) {
    out << std::string(static_cast<size_t>(p.depth) * 2, ' ') << p.label
        << "  [arity " << p.working_arity << "->" << p.projected_arity
        << "]  est=" << p.estimated_rows << " actual=" << p.actual_rows;
    if (analyzed) {
      // Measured beside predicted: the span actuals, then the width
      // analyzer's static bounds when a verifier supplied them.
      out << "  | actual arity<=" << p.actual_max_arity
          << " bytes=" << p.actual_bytes << " ns=" << p.actual_ns;
      if (p.predicted_arity_bound >= 0) {
        out << "  predicted arity<=" << p.predicted_arity_bound
            << " rows<=" << p.predicted_rows_bound;
      }
      if (p.morsel_fanout > 0) out << " morsels=" << p.morsel_fanout;
      if (p.arity_violation) out << "  !! arity bound violated";
    }
    out << "\n";
  }
  out << "-- tuples_produced=" << stats.tuples_produced
      << " max_intermediate_rows=" << stats.max_intermediate_rows
      << " peak_bytes=" << stats.peak_bytes
      << " num_semijoins=" << stats.num_semijoins << "\n";
  if (!verifier_verdict.empty() || !semantic_verdict.empty()) {
    out << "-- verifier: "
        << (verifier_verdict.empty() ? "not run" : verifier_verdict);
    if (!semantic_verdict.empty()) {
      out << " | semantics: " << semantic_verdict << " (" << semantic_ns
          << " ns)";
    }
    out << "\n";
  }
  return out.str();
}

double ExplainResult::WorstEstimateRatio() const {
  double worst = 1.0;
  for (const NodeProfile& p : nodes) {
    if (p.actual_rows < 0 || p.estimated_rows <= 0) continue;  // truncated
    // Smooth empty results to one row so "predicted rows, got none" —
    // the signature failure of independence estimates on correlated
    // queries — registers as a finite but large ratio.
    const double actual = std::max(1.0, static_cast<double>(p.actual_rows));
    const double estimate = std::max(1.0, p.estimated_rows);
    worst = std::max(worst, std::max(actual / estimate, estimate / actual));
  }
  return worst;
}

ExplainResult ExplainPlan(const ConjunctiveQuery& query, const Plan& plan,
                          const Database& db, double domain_size,
                          Counter tuple_budget, bool analyze, bool columnar) {
  ExplainResult result;
  PPR_CHECK(domain_size >= 1.0);
  if (plan.empty()) {
    result.status = Status::InvalidArgument("empty plan");
    return result;
  }
  result.status = query.Validate(db);
  if (!result.status.ok()) return result;

  // Surface the static-analysis verdict when verification is enabled; a
  // rejected plan is reported, not executed.
  const std::shared_ptr<const PlanVerifierHooks> hooks =
      GetPlanVerifierHooks();
  const bool verify = PlanVerificationEnabled();
  if (verify && hooks->logical) {
    Status verdict = hooks->logical(query, plan, db);
    result.verifier_verdict = verdict.ok() ? "OK" : verdict.ToString();
    if (!verdict.ok()) {
      result.status = verdict;
      return result;
    }
  }
  // Semantic tier (independently gated): certify the plan denotes the
  // query, and surface what the proof cost beside its verdict.
  if (SemanticVerificationEnabled() && hooks->semantic) {
    const auto start = std::chrono::steady_clock::now();
    Status verdict = hooks->semantic(query, plan, db, nullptr);
    result.semantic_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    result.semantic_verdict = verdict.ok() ? "OK" : verdict.ToString();
    if (!verdict.ok()) {
      result.status = verdict;
      return result;
    }
  }

  ExecContext ctx(tuple_budget);
  // ANALYZE profiles through a private sink (never the PPR_TRACE one:
  // the annotations must not depend on process-wide state). Sized so one
  // run can never wrap: each node executes at most its child-count many
  // joins plus a scan and a projection, and the plan is a tree, so 4
  // spans per node over-provisions.
  TraceSink sink(static_cast<size_t>(
      std::max(4 * plan.NumNodes(), 1024)));
  if (analyze) ctx.set_tracer(&sink);
  const MorselExec mx;  // inline, sequential, env-default morsel size
  Estimate est;
  EvalProfiled(query, plan.root(), db, domain_size, 0, ctx,
               columnar ? &mx : nullptr, &result.nodes, &est);
  result.stats = ctx.stats();
  if (ctx.exhausted()) {
    result.status = Status::ResourceExhausted("tuple budget exceeded");
  }
  if (!analyze) return result;

  result.analyzed = true;
  for (const TraceSpan& span : sink.Snapshot()) {
    if (span.node_id < 0 ||
        static_cast<size_t>(span.node_id) >= result.nodes.size()) {
      continue;
    }
    NodeProfile& p = result.nodes[static_cast<size_t>(span.node_id)];
    p.actual_ns += span.duration_ns;
    p.actual_bytes = std::max(p.actual_bytes, span.bytes);
    p.actual_max_arity = std::max(p.actual_max_arity, span.arity_out);
    if (span.morsel_id >= 0) p.morsel_fanout++;
  }

  // The predicted side: the width analyzer's per-node bounds, via the
  // verifier registration. A measured arity above a predicted bound
  // means the static proof is wrong — escalate like a verifier failure.
  if (verify && hooks->node_bounds) {
    std::vector<PlanNodeBound> bounds;
    Status bound_status = hooks->node_bounds(query, plan, db, &bounds);
    if (bound_status.ok() && bounds.size() == result.nodes.size()) {
      for (size_t i = 0; i < bounds.size(); ++i) {
        NodeProfile& p = result.nodes[i];
        p.predicted_arity_bound = bounds[i].arity_bound;
        p.predicted_rows_bound = bounds[i].rows_bound;
        if (p.predicted_arity_bound >= 0 &&
            p.actual_max_arity > p.predicted_arity_bound) {
          p.arity_violation = true;
          result.verifier_verdict =
              "arity bound violated at node " + std::to_string(i) +
              ": actual " + std::to_string(p.actual_max_arity) +
              " > predicted " + std::to_string(p.predicted_arity_bound);
          result.status = Status::Internal(result.verifier_verdict);
        }
      }
    }
  }
  return result;
}

}  // namespace ppr
