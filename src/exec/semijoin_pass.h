#ifndef PPR_EXEC_SEMIJOIN_PASS_H_
#define PPR_EXEC_SEMIJOIN_PASS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"
#include "relational/exec_context.h"

namespace ppr {

/// Result of a semijoin reduction pass (the Wong-Youssefi / Yannakakis
/// direction the paper defers to future work in Section 7).
struct SemijoinPassResult {
  Status status;
  /// Rewritten query: atom i now references its own reduced relation.
  ConjunctiveQuery query;
  /// Database holding one reduced relation per atom.
  Database db;
  /// Tuples eliminated across all atoms (0 on the paper's coloring
  /// queries — Section 2 notes semijoins are useless there because every
  /// projection of `edge` yields the full color domain).
  Counter tuples_removed = 0;
  /// Semijoin operations performed until the fixpoint.
  Counter semijoins_performed = 0;
  /// True when some atom's relation became empty (query answer is empty).
  bool proven_empty = false;
};

/// Runs semijoins between overlapping atoms to a fixpoint, shrinking each
/// atom's relation to the tuples that can still participate in the join.
/// For acyclic queries this computes the full reduction of Yannakakis
/// [35], after which intermediate results never shrink to zero mid-join;
/// for cyclic queries it is still a sound filter. The returned query/db
/// pair can be planned and executed with any strategy.
///
/// `max_rounds` bounds the number of full passes (each pass is O(m^2)
/// semijoins); the fixpoint is reached when a pass removes nothing.
SemijoinPassResult SemijoinReduce(const ConjunctiveQuery& query,
                                  const Database& db, int max_rounds = 16);

}  // namespace ppr

#endif  // PPR_EXEC_SEMIJOIN_PASS_H_
