#include "exec/minibuckets.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "graph/elimination.h"
#include "relational/ops.h"

namespace ppr {
namespace {

// Sorted union of the attribute sets of `a` and `b`.
std::vector<AttrId> UnionAttrs(const std::vector<AttrId>& a,
                               const std::vector<AttrId>& b) {
  std::vector<AttrId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<AttrId> SortedAttrs(const Relation& rel) {
  std::vector<AttrId> attrs = rel.schema().attrs();
  std::sort(attrs.begin(), attrs.end());
  return attrs;
}

}  // namespace

MiniBucketResult MiniBucketEliminate(const ConjunctiveQuery& query,
                                     const Database& db,
                                     const std::vector<AttrId>& numbering,
                                     int i_bound, Counter tuple_budget) {
  MiniBucketResult out;
  out.i_bound = i_bound;
  PPR_CHECK(i_bound >= 1);
  out.status = query.Validate(db);
  if (!out.status.ok()) return out;

  std::map<AttrId, int> position;
  for (size_t i = 0; i < numbering.size(); ++i) {
    const bool inserted =
        position.emplace(numbering[i], static_cast<int>(i)).second;
    PPR_CHECK(inserted);
  }

  ExecContext ctx(tuple_budget);
  auto is_free = [&](AttrId a) {
    return std::find(query.free_vars().begin(), query.free_vars().end(),
                     a) != query.free_vars().end();
  };
  auto max_position = [&](const Relation& rel) {
    int best = -1;
    for (AttrId a : rel.schema().attrs()) {
      best = std::max(best, position.at(a));
    }
    return best;
  };

  const int n = static_cast<int>(numbering.size());
  std::vector<std::vector<Relation>> buckets(static_cast<size_t>(n));
  std::vector<Relation> leftovers;

  auto route = [&](Relation rel, int below) {
    // Sends `rel` to the bucket of its highest-numbered attribute strictly
    // below `below`, or to the leftovers when none exists.
    int dest = -1;
    for (AttrId a : rel.schema().attrs()) {
      const int p = position.at(a);
      if (p < below) dest = std::max(dest, p);
    }
    // An emptied relation soundly proves the answer empty — but only when
    // it is genuinely empty, not truncated by the budget.
    if (rel.empty() && !ctx.exhausted()) out.proven_empty = true;
    if (dest < 0) {
      leftovers.push_back(std::move(rel));
    } else {
      buckets[static_cast<size_t>(dest)].push_back(std::move(rel));
    }
  };

  for (const Atom& atom : query.atoms()) {
    const Relation* stored = *db.Get(atom.relation);
    Relation bound = BindAtom(*stored, atom.args, ctx);
    if (ctx.exhausted()) break;
    const int below = max_position(bound) + 1;  // its own top bucket
    route(std::move(bound), below);
  }

  for (int i = n - 1; i >= 0 && !ctx.exhausted(); --i) {
    auto& bucket = buckets[static_cast<size_t>(i)];
    if (bucket.empty()) continue;
    const AttrId var = numbering[static_cast<size_t>(i)];

    // Greedy first-fit partition into mini-buckets whose joint schema has
    // at most i_bound attributes (a single over-wide relation forms its
    // own mini-bucket).
    std::vector<std::vector<Relation>> minis;
    std::vector<std::vector<AttrId>> mini_attrs;
    for (Relation& rel : bucket) {
      const std::vector<AttrId> attrs = SortedAttrs(rel);
      bool placed = false;
      for (size_t mb = 0; mb < minis.size(); ++mb) {
        std::vector<AttrId> merged = UnionAttrs(mini_attrs[mb], attrs);
        if (static_cast<int>(merged.size()) <= i_bound) {
          minis[mb].push_back(std::move(rel));
          mini_attrs[mb] = std::move(merged);
          placed = true;
          break;
        }
      }
      if (!placed) {
        minis.push_back({});
        minis.back().push_back(std::move(rel));
        mini_attrs.push_back(attrs);
      }
    }
    bucket.clear();
    if (minis.size() > 1) out.buckets_split++;

    // Join each mini-bucket and project the bucket variable out of each —
    // projecting per mini-bucket instead of per bucket is exactly the
    // upper-bound relaxation.
    for (auto& mini : minis) {
      Relation acc = std::move(mini.front());
      for (size_t r = 1; r < mini.size() && !ctx.exhausted(); ++r) {
        acc = NaturalJoin(acc, mini[r], ctx);
      }
      if (ctx.exhausted()) break;
      if (!is_free(var) && acc.schema().Contains(var)) {
        std::vector<AttrId> keep;
        keep.reserve(static_cast<size_t>(acc.arity()) - 1);
        for (AttrId a : acc.schema().attrs()) {
          if (a != var) keep.push_back(a);
        }
        acc = Project(acc, keep, ctx);
      }
      route(std::move(acc), i);
    }
  }

  // Final join of the leftovers: empty anywhere proves emptiness.
  if (!ctx.exhausted() && !leftovers.empty()) {
    Relation acc = std::move(leftovers.front());
    for (size_t r = 1; r < leftovers.size() && !ctx.exhausted(); ++r) {
      acc = NaturalJoin(acc, leftovers[r], ctx);
    }
    if (!ctx.exhausted() && acc.empty()) out.proven_empty = true;
  }

  out.stats = ctx.stats();
  out.status = ctx.exhausted()
                   ? Status::ResourceExhausted("tuple budget exceeded")
                   : Status::Ok();
  return out;
}

MiniBucketResult MiniBucketEliminateMcs(const ConjunctiveQuery& query,
                                        const Database& db, int i_bound,
                                        Rng* rng, Counter tuple_budget) {
  const Graph join_graph = BuildJoinGraph(query);
  const std::vector<int> numbering =
      MaxCardinalityNumbering(join_graph, query.free_vars(), rng);
  return MiniBucketEliminate(query, db,
                             std::vector<AttrId>(numbering.begin(),
                                                 numbering.end()),
                             i_bound, tuple_budget);
}

}  // namespace ppr
