#include "exec/verify_hook.h"

#include <atomic>
#include <utility>

#include "common/env.h"
#include "common/mutex.h"

namespace ppr {
namespace {

struct HookState {
  Mutex mu;
  /// Immutable snapshot, swapped whole under `mu`; readers copy the
  /// shared_ptr (also under `mu` — a shared_ptr object is not safe to
  /// copy concurrently with reassignment) and then run the callbacks
  /// lock-free.
  std::shared_ptr<const PlanVerifierHooks> hooks GUARDED_BY(mu) =
      std::make_shared<const PlanVerifierHooks>();
  /// Initial value comes from the once-read ProcessEnv() snapshot
  /// (common/env.h), not a getenv call, so compilation on runtime worker
  /// threads (plan-cache misses) never reads the environment.
  std::atomic<bool> enabled{ProcessEnv().verify_plans};
  std::atomic<bool> semantic_enabled{ProcessEnv().verify_semantics};
};

HookState& State() {
  static HookState state;
  return state;
}

}  // namespace

void SetPlanVerifierHooks(PlanVerifierHooks hooks) {
  HookState& state = State();
  auto snapshot = std::make_shared<const PlanVerifierHooks>(std::move(hooks));
  MutexLock lock(state.mu);
  state.hooks = std::move(snapshot);
}

void ClearPlanVerifierHooks() { SetPlanVerifierHooks(PlanVerifierHooks{}); }

std::shared_ptr<const PlanVerifierHooks> GetPlanVerifierHooks() {
  HookState& state = State();
  MutexLock lock(state.mu);
  return state.hooks;
}

void EnablePlanVerification(bool on) {
  State().enabled.store(on, std::memory_order_release);
}

bool PlanVerificationEnabled() {
  return State().enabled.load(std::memory_order_acquire);
}

void EnableSemanticVerification(bool on) {
  State().semantic_enabled.store(on, std::memory_order_release);
}

bool SemanticVerificationEnabled() {
  return State().semantic_enabled.load(std::memory_order_acquire);
}

}  // namespace ppr
