#include "exec/verify_hook.h"

#include <utility>

#include "common/env.h"

namespace ppr {
namespace {

PlanVerifierHooks& Hooks() {
  static PlanVerifierHooks hooks;
  return hooks;
}

// Initial value comes from the once-read ProcessEnv() snapshot
// (common/env.h), not a getenv call, so compilation on runtime worker
// threads (plan-cache misses) never reads the environment.
bool& Enabled() {
  static bool enabled = ProcessEnv().verify_plans;
  return enabled;
}

}  // namespace

void SetPlanVerifierHooks(PlanVerifierHooks hooks) {
  Hooks() = std::move(hooks);
}

void ClearPlanVerifierHooks() { Hooks() = PlanVerifierHooks{}; }

const PlanVerifierHooks& GetPlanVerifierHooks() { return Hooks(); }

void EnablePlanVerification(bool on) { Enabled() = on; }

bool PlanVerificationEnabled() { return Enabled(); }

}  // namespace ppr
