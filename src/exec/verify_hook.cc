#include "exec/verify_hook.h"

#include <cstdlib>
#include <cstring>
#include <utility>

namespace ppr {
namespace {

PlanVerifierHooks& Hooks() {
  static PlanVerifierHooks hooks;
  return hooks;
}

bool& Enabled() {
  static bool enabled = [] {
    const char* env = std::getenv("PPR_VERIFY_PLANS");
    return env != nullptr && std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

}  // namespace

void SetPlanVerifierHooks(PlanVerifierHooks hooks) {
  Hooks() = std::move(hooks);
}

void ClearPlanVerifierHooks() { Hooks() = PlanVerifierHooks{}; }

const PlanVerifierHooks& GetPlanVerifierHooks() { return Hooks(); }

void EnablePlanVerification(bool on) { Enabled() = on; }

bool PlanVerificationEnabled() { return Enabled(); }

}  // namespace ppr
