#include "exec/physical_plan.h"

#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/timer.h"
#include "exec/verify_hook.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/sort_merge.h"

namespace ppr {
namespace {

// Lowers one logical node. Schemas are derived exactly as the seed
// interpreter derived them at runtime: a leaf's schema is the atom's
// distinct attributes (then the optional projection), an internal node's
// schema is the left-to-right fold of its children's output schemas.
std::unique_ptr<PhysicalNode> CompileNode(const ConjunctiveQuery& query,
                                          const PlanNode* node,
                                          const Database& db,
                                          int32_t* next_node_id) {
  auto phys = std::make_unique<PhysicalNode>();
  phys->node_id = (*next_node_id)++;
  Schema working;
  if (node->IsLeaf()) {
    const Atom& atom = query.atoms()[static_cast<size_t>(node->atom_index)];
    Result<const Relation*> stored = db.Get(atom.relation);
    PPR_CHECK(stored.ok());  // Validate() runs before compilation
    phys->stored = *stored;
    phys->scan = PlanScan(phys->stored->arity(), atom.args);
    working = phys->scan.out_schema;
  } else {
    phys->children.reserve(node->children.size());
    for (const auto& child : node->children) {
      phys->children.push_back(CompileNode(query, child.get(), db,
                                           next_node_id));
    }
    working = phys->children.front()->output_schema;
    phys->joins.reserve(phys->children.size() - 1);
    for (size_t i = 1; i < phys->children.size(); ++i) {
      JoinSpec spec = PlanJoin(working, phys->children[i]->output_schema);
      working = spec.out_schema;
      phys->joins.push_back(std::move(spec));
    }
  }
  if (node->Projects()) {
    phys->has_project = true;
    phys->project = PlanProject(working, node->projected);
    phys->output_schema = phys->project.out_schema;
  } else {
    phys->output_schema = std::move(working);
  }
  return phys;
}

// Bottom-up evaluation with the exact control flow of the seed
// interpreter (executor.cc's EvalNode), so budget-exhaustion skip
// behavior — and therefore every statistic — is preserved bit for bit.
Relation Exec(const PhysicalNode& node, JoinAlgorithm join_algorithm,
              ExecContext& ctx) {
  if (node.IsLeaf()) {
    ctx.set_trace_node(node.node_id);
    Relation bound = ScanAtom(*node.stored, node.scan, ctx);
    if (node.has_project && !ctx.exhausted()) {
      return ProjectColumns(bound, node.project, ctx);
    }
    return bound;
  }

  Relation acc = Exec(*node.children.front(), join_algorithm, ctx);
  for (size_t i = 1; i < node.children.size() && !ctx.exhausted(); ++i) {
    Relation next = Exec(*node.children[i], join_algorithm, ctx);
    if (ctx.exhausted()) break;
    // Children retargeted the span attribution; point it back at this
    // node for the fold step's join (and the projection below).
    ctx.set_trace_node(node.node_id);
    acc = join_algorithm == JoinAlgorithm::kSortMerge
              ? SortMergeJoin(acc, next, ctx)
              : HashJoin(acc, next, node.joins[i - 1], ctx);
  }
  if (node.has_project && !ctx.exhausted()) {
    ctx.set_trace_node(node.node_id);
    return ProjectColumns(acc, node.project, ctx);
  }
  return acc;
}

// Appends one kernel's accounting entry. Kernels that bypassed the
// morsel partition pass a null `morsel_rows` and get one pseudo morsel
// holding the whole output (none when empty), preserving the invariant
// sum(morsel_rows) == output_rows.
void Account(MorselAccounting* acct, int32_t node_id, MorselOp op,
             const Relation& out, std::vector<int64_t>* morsel_rows) {
  if (acct == nullptr) return;
  MorselOpAccount entry;
  entry.node_id = node_id;
  entry.op = op;
  entry.arity = out.arity();
  entry.output_rows = out.size();
  if (morsel_rows != nullptr) {
    entry.morsel_rows = std::move(*morsel_rows);
  } else if (!out.empty()) {
    entry.morsel_rows.push_back(out.size());
  }
  acct->ops.push_back(std::move(entry));
}

// Columnar twin of Exec(): identical control flow (budget-exhaustion
// skips included) with the batch kernels substituted, so the output and
// every statistic except peak_bytes match the row walk bit for bit.
// kSortMerge joins have no columnar variant and run the row kernel.
Relation ExecColumnar(const PhysicalNode& node, JoinAlgorithm join_algorithm,
                      ExecContext& ctx, const MorselExec& mx,
                      MorselAccounting* acct) {
  std::vector<int64_t> morsels;
  std::vector<int64_t>* mr = acct != nullptr ? &morsels : nullptr;
  if (node.IsLeaf()) {
    ctx.set_trace_node(node.node_id);
    Relation bound = ScanAtomColumnar(*node.stored, node.scan, ctx, mx, mr);
    Account(acct, node.node_id, MorselOp::kScan, bound, mr);
    if (node.has_project && !ctx.exhausted()) {
      Relation projected =
          ProjectColumnsColumnar(bound, node.project, ctx, mx, mr);
      Account(acct, node.node_id, MorselOp::kProject, projected, mr);
      return projected;
    }
    return bound;
  }

  Relation acc = ExecColumnar(*node.children.front(), join_algorithm, ctx,
                              mx, acct);
  for (size_t i = 1; i < node.children.size() && !ctx.exhausted(); ++i) {
    Relation next =
        ExecColumnar(*node.children[i], join_algorithm, ctx, mx, acct);
    if (ctx.exhausted()) break;
    ctx.set_trace_node(node.node_id);
    if (join_algorithm == JoinAlgorithm::kSortMerge) {
      acc = SortMergeJoin(acc, next, ctx);
      Account(acct, node.node_id, MorselOp::kJoin, acc, nullptr);
    } else {
      acc = HashJoinColumnar(acc, next, node.joins[i - 1], ctx, mx, mr);
      Account(acct, node.node_id, MorselOp::kJoin, acc, mr);
    }
  }
  if (node.has_project && !ctx.exhausted()) {
    ctx.set_trace_node(node.node_id);
    Relation projected = ProjectColumnsColumnar(acc, node.project, ctx, mx,
                                                mr);
    Account(acct, node.node_id, MorselOp::kProject, projected, mr);
    return projected;
  }
  return acc;
}

int CountNodes(const PhysicalNode& node) {
  int n = 1;
  for (const auto& child : node.children) n += CountNodes(*child);
  return n;
}

}  // namespace

Result<PhysicalPlan> PhysicalPlan::Compile(const ConjunctiveQuery& query,
                                           const Plan& plan,
                                           const Database& db,
                                           JoinAlgorithm join_algorithm) {
  if (plan.empty()) return Status::InvalidArgument("empty plan");
  Status valid = query.Validate(db);
  if (!valid.ok()) return valid;

  // Debug-mode static analysis (exec/verify_hook.h): prove the logical
  // plan well-formed before lowering and the compiled plan faithful to it
  // after, failing compilation instead of executing a corrupt plan.
  const std::shared_ptr<const PlanVerifierHooks> hooks =
      GetPlanVerifierHooks();
  const bool verify = PlanVerificationEnabled();
  if (verify && hooks->logical) {
    Status verdict = hooks->logical(query, plan, db);
    if (!verdict.ok()) return verdict;
  }
  int32_t next_node_id = 0;
  PhysicalPlan compiled(CompileNode(query, plan.root(), db, &next_node_id),
                        join_algorithm);
  if (verify && hooks->compiled) {
    Status verdict = hooks->compiled(query, plan, db, compiled);
    if (!verdict.ok()) return verdict;
  }
  // Third tier, independently gated: prove the plan (logical and
  // compiled) still *denotes the query* — the structural passes above
  // only prove the tree well-formed.
  if (SemanticVerificationEnabled() && hooks->semantic) {
    Status verdict = hooks->semantic(query, plan, db, &compiled);
    if (!verdict.ok()) return verdict;
  }
  return compiled;
}

ExecutionResult PhysicalPlan::Execute(Counter tuple_budget,
                                      TraceSink* trace) {
  TraceSink* sink = trace != nullptr ? trace : GlobalTraceSinkIfEnabled();
  MetricsRegistry* metrics = nullptr;
  if (sink != nullptr) {
    // Publishing into the global registry during the run is safe under
    // Execute's documented single-threaded contract; the capability only
    // covers obtaining the reference (serialized against drains).
    MutexLock lock(GlobalObsMutex());
    metrics = &GlobalMetrics();
  }
  ExecutionResult result =
      ExecuteShared(&arena_, tuple_budget, sink, metrics);
  if (sink != nullptr && sink == GlobalTraceSinkIfEnabled()) {
    MutexLock lock(GlobalObsMutex());
    (void)FlushTraceArtifacts();
  }
  return result;
}

ExecutionResult PhysicalPlan::ExecuteShared(ExecArena* arena,
                                            Counter tuple_budget,
                                            TraceSink* trace,
                                            MetricsRegistry* metrics) const {
  ExecutionResult result;
  if (arena != nullptr) arena->Reset();
  ExecContext ctx(tuple_budget, arena);
  const uint64_t span_mark = trace != nullptr ? trace->total_recorded() : 0;
  ctx.set_tracer(trace);
  WallTimer timer;
  Relation output = Exec(*root_, join_algorithm_, ctx);
  result.seconds = timer.ElapsedSeconds();
  result.stats = ctx.stats();
  if (metrics != nullptr) {
    ctx.stats().PublishTo(metrics);
    if (trace != nullptr) {
      PublishSpanMetrics(trace->SnapshotSince(span_mark), metrics);
    }
  }
  if (ctx.exhausted()) {
    result.status = Status::ResourceExhausted("tuple budget exceeded");
  } else {
    result.status = Status::Ok();
    result.output = std::move(output);
  }
  return result;
}

ExecutionResult PhysicalPlan::ExecuteColumnar(Counter tuple_budget,
                                              TraceSink* trace) {
  TraceSink* sink = trace != nullptr ? trace : GlobalTraceSinkIfEnabled();
  MetricsRegistry* metrics = nullptr;
  if (sink != nullptr) {
    MutexLock lock(GlobalObsMutex());
    metrics = &GlobalMetrics();
  }
  const MorselExec mx;  // inline, sequential, env-default morsel size
  ExecutionResult result =
      ExecuteMorsel(mx, &arena_, tuple_budget, sink, metrics);
  if (sink != nullptr && sink == GlobalTraceSinkIfEnabled()) {
    MutexLock lock(GlobalObsMutex());
    (void)FlushTraceArtifacts();
  }
  return result;
}

ExecutionResult PhysicalPlan::ExecuteMorsel(const MorselExec& mx,
                                            ExecArena* arena,
                                            Counter tuple_budget,
                                            TraceSink* trace,
                                            MetricsRegistry* metrics,
                                            MorselAccounting* accounting)
    const {
  ExecutionResult result;
  if (arena != nullptr) arena->Reset();
  ExecContext ctx(tuple_budget, arena);
  const uint64_t span_mark = trace != nullptr ? trace->total_recorded() : 0;
  ctx.set_tracer(trace);
  WallTimer timer;
  Relation output = ExecColumnar(*root_, join_algorithm_, ctx, mx,
                                 accounting);
  result.seconds = timer.ElapsedSeconds();
  result.stats = ctx.stats();
  if (metrics != nullptr) {
    ctx.stats().PublishTo(metrics);
    if (trace != nullptr) {
      PublishSpanMetrics(trace->SnapshotSince(span_mark), metrics);
    }
  }
  if (ctx.exhausted()) {
    result.status = Status::ResourceExhausted("tuple budget exceeded");
  } else {
    result.status = Status::Ok();
    result.output = std::move(output);
  }
  return result;
}

int PhysicalPlan::NumNodes() const { return CountNodes(*root_); }

}  // namespace ppr
