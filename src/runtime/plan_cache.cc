#include "runtime/plan_cache.h"

#include <algorithm>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"

namespace ppr {
namespace {

// SplitMix64-style mixing (same family as common/hash.h) for the
// refinement colors and fingerprint hashes. Colors are structural
// summaries, not security tokens; 64-bit accidental collisions are
// irrelevant next to the heuristic incompleteness documented on
// CanonicalQuery — and cache soundness never rests on a hash (keys
// compare the full structure bytes).
uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  return h;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 0x94D049BB133111EBULL;
  for (char c : s) h = Mix(h, static_cast<uint8_t>(c));
  return h;
}

size_t CountDistinct(std::vector<uint64_t> values) {
  std::sort(values.begin(), values.end());
  return static_cast<size_t>(
      std::unique(values.begin(), values.end()) - values.begin());
}

}  // namespace

uint64_t FingerprintQueryStructure(const std::string& structure) {
  return HashString(structure);
}

CanonicalQuery CanonicalizeQuery(const ConjunctiveQuery& query) {
  const std::vector<AttrId> attrs = query.AllAttrs();
  const size_t n = attrs.size();
  auto dense_of = [&attrs](AttrId a) {
    return static_cast<size_t>(
        std::lower_bound(attrs.begin(), attrs.end(), a) - attrs.begin());
  };

  std::vector<char> is_free(n, 0);
  for (AttrId f : query.free_vars()) is_free[dense_of(f)] = 1;

  struct AtomInfo {
    uint64_t rel_hash = 0;
    std::vector<size_t> args;  // dense attr indices, repeats preserved
  };
  std::vector<AtomInfo> atom_infos;
  atom_infos.reserve(query.atoms().size());
  for (const Atom& atom : query.atoms()) {
    AtomInfo info;
    info.rel_hash = HashString(atom.relation);
    info.args.reserve(atom.args.size());
    for (AttrId a : atom.args) info.args.push_back(dense_of(a));
    atom_infos.push_back(std::move(info));
  }

  // Weisfeiler-Leman color refinement over the attribute <-> atom
  // incidence structure. An attribute's new color digests, for every
  // occurrence, the owning atom's signature (relation + the colors of all
  // its args in order) and the occurrence position — so after a round,
  // equal colors mean locally indistinguishable attributes.
  std::vector<uint64_t> color(n);
  for (size_t i = 0; i < n; ++i) {
    color[i] = Mix(0x5150BBA7C0FFEE01ULL, static_cast<uint64_t>(is_free[i]));
  }
  auto refine_round = [&] {
    std::vector<uint64_t> atom_sig(atom_infos.size());
    for (size_t a = 0; a < atom_infos.size(); ++a) {
      uint64_t h = atom_infos[a].rel_hash;
      for (size_t arg : atom_infos[a].args) h = Mix(h, color[arg]);
      atom_sig[a] = h;
    }
    std::vector<std::vector<uint64_t>> contrib(n);
    for (size_t a = 0; a < atom_infos.size(); ++a) {
      const auto& args = atom_infos[a].args;
      for (size_t j = 0; j < args.size(); ++j) {
        contrib[args[j]].push_back(Mix(atom_sig[a], j));
      }
    }
    for (size_t i = 0; i < n; ++i) {
      std::sort(contrib[i].begin(), contrib[i].end());  // multiset digest
      uint64_t h = color[i];
      for (uint64_t c : contrib[i]) h = Mix(h, c);
      color[i] = h;
    }
  };
  auto refine_to_fixpoint = [&] {
    size_t distinct = CountDistinct(color);
    for (size_t round = 0; round < n; ++round) {
      refine_round();
      const size_t d = CountDistinct(color);
      if (d == distinct) break;
      distinct = d;
    }
    return distinct;
  };
  size_t distinct = refine_to_fixpoint();

  // Individualization for symmetric remainders: force apart one member of
  // a tied class and re-refine, until all colors are distinct. The member
  // choice (smallest color, then input order) is deterministic but not
  // isomorphism-invariant — the documented heuristic gap.
  while (distinct < n) {
    size_t pick = n;
    uint64_t pick_color = 0;
    for (size_t i = 0; i < n; ++i) {
      const bool tied =
          std::count(color.begin(), color.end(), color[i]) > 1;
      if (tied && (pick == n || color[i] < pick_color)) {
        pick = i;
        pick_color = color[i];
      }
    }
    PPR_CHECK(pick < n);
    color[pick] = Mix(color[pick], 0x1D1D1D1D1D1D1D1DULL);
    distinct = refine_to_fixpoint();
  }

  // Canonical rank = position in color order (colors are now distinct).
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&color](size_t a, size_t b) { return color[a] < color[b]; });
  std::vector<AttrId> to_canonical(n);
  CanonicalQuery canon;
  canon.from_canonical.resize(n);
  for (size_t rank = 0; rank < n; ++rank) {
    to_canonical[order[rank]] = static_cast<AttrId>(rank);
    canon.from_canonical[rank] = attrs[order[rank]];
  }

  std::vector<Atom> catoms;
  catoms.reserve(atom_infos.size());
  for (size_t a = 0; a < atom_infos.size(); ++a) {
    Atom atom;
    atom.relation = query.atoms()[a].relation;
    atom.args.reserve(atom_infos[a].args.size());
    for (size_t arg : atom_infos[a].args) {
      atom.args.push_back(to_canonical[arg]);
    }
    catoms.push_back(std::move(atom));
  }
  std::sort(catoms.begin(), catoms.end(), [](const Atom& x, const Atom& y) {
    if (x.relation != y.relation) return x.relation < y.relation;
    return x.args < y.args;
  });
  std::vector<AttrId> cfree;
  cfree.reserve(query.free_vars().size());
  for (AttrId f : query.free_vars()) {
    cfree.push_back(to_canonical[dense_of(f)]);
  }
  std::sort(cfree.begin(), cfree.end());

  std::string structure;
  for (const Atom& atom : catoms) {
    structure += atom.relation;
    structure += '(';
    for (size_t j = 0; j < atom.args.size(); ++j) {
      if (j > 0) structure += ',';
      structure += std::to_string(atom.args[j]);
    }
    structure += ");";
  }
  structure += '|';
  for (size_t j = 0; j < cfree.size(); ++j) {
    if (j > 0) structure += ',';
    structure += std::to_string(cfree[j]);
  }

  canon.query = ConjunctiveQuery(std::move(catoms), std::move(cfree));
  canon.structure = std::move(structure);
  return canon;
}

uint64_t FingerprintDatabase(const Database& db) {
  uint64_t h = 0xD1B54A32D192ED03ULL;
  for (const std::string& name : db.Names()) {  // sorted
    Result<const Relation*> rel = db.Get(name);
    PPR_CHECK(rel.ok());
    h = Mix(h, HashString(name));
    h = Mix(h, static_cast<uint64_t>((*rel)->arity()));
    h = Mix(h, static_cast<uint64_t>((*rel)->size()));
    const Relation& r = **rel;
    const int64_t values = r.size() * r.arity();
    for (int64_t i = 0; i < values; ++i) {
      h = Mix(h, static_cast<uint64_t>(static_cast<uint32_t>(r.data()[i])));
    }
  }
  return h;
}

uint64_t HashPlanCacheKey(const PlanCacheKey& key) {
  uint64_t h = HashString(key.structure);
  h = Mix(h, static_cast<uint64_t>(key.strategy));
  h = Mix(h, key.seed);
  h = Mix(h, static_cast<uint64_t>(key.join_algorithm));
  h = Mix(h, reinterpret_cast<uintptr_t>(key.db));
  h = Mix(h, key.db_fingerprint);
  return h;
}

namespace {
struct KeyHasher {
  size_t operator()(const PlanCacheKey& key) const {
    return static_cast<size_t>(HashPlanCacheKey(key));
  }
};
}  // namespace

/// Single-flight slot: the first thread to miss owns the compile; every
/// later arrival blocks on `cv` until `done`.
struct PlanCache::InFlight {
  Mutex mu;
  CondVar cv;
  bool done GUARDED_BY(mu) = false;
  Status error GUARDED_BY(mu);  // OK iff `plan` is set
  std::shared_ptr<const CachedPlan> plan GUARDED_BY(mu);
};

struct PlanCache::Shard {
  mutable Mutex mu;
  /// LRU list, most recently used first; `entries` indexes it by key.
  std::list<std::pair<PlanCacheKey, std::shared_ptr<const CachedPlan>>> lru
      GUARDED_BY(mu);
  std::unordered_map<
      PlanCacheKey,
      std::list<std::pair<PlanCacheKey,
                          std::shared_ptr<const CachedPlan>>>::iterator,
      KeyHasher>
      entries GUARDED_BY(mu);
  std::unordered_map<PlanCacheKey, std::shared_ptr<InFlight>, KeyHasher>
      inflight GUARDED_BY(mu);
  int64_t hits GUARDED_BY(mu) = 0;
  int64_t misses GUARDED_BY(mu) = 0;
  int64_t evictions GUARDED_BY(mu) = 0;
};

PlanCache::PlanCache(size_t capacity, int num_shards) {
  PPR_CHECK(num_shards >= 1);
  shard_capacity_ = std::max<size_t>(
      1, (capacity + static_cast<size_t>(num_shards) - 1) /
             static_cast<size_t>(num_shards));
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::~PlanCache() = default;

PlanCache::Shard& PlanCache::ShardFor(const PlanCacheKey& key) {
  return *shards_[static_cast<size_t>(HashPlanCacheKey(key)) %
                  shards_.size()];
}

Result<std::shared_ptr<const CachedPlan>> PlanCache::GetOrCompile(
    const PlanCacheKey& key, const Factory& factory, bool* compiled_here) {
  if (compiled_here != nullptr) *compiled_here = false;
  Shard& shard = ShardFor(key);
  std::shared_ptr<InFlight> flight;
  bool owner = false;
  {
    MutexLock lock(shard.mu);
    if (auto it = shard.entries.find(key); it != shard.entries.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->second;
    }
    if (auto it = shard.inflight.find(key); it != shard.inflight.end()) {
      // Someone else is compiling this key right now; reusing their
      // result is a hit (this thread runs no factory), which keeps the
      // counters deterministic under any interleaving.
      ++shard.hits;
      flight = it->second;
    } else {
      ++shard.misses;
      flight = std::make_shared<InFlight>();
      shard.inflight.emplace(key, flight);
      owner = true;
    }
  }

  if (!owner) {
    InFlight& f = *flight;
    MutexLock lock(f.mu);
    while (!f.done) f.cv.Wait(f.mu);
    if (!f.error.ok()) return f.error;
    return f.plan;
  }

  // Owner: compile with no cache lock held.
  if (compiled_here != nullptr) *compiled_here = true;
  Result<CachedPlan> built = factory();
  const Status error = built.status();
  std::shared_ptr<const CachedPlan> plan;
  if (built.ok()) {
    plan = std::make_shared<const CachedPlan>(std::move(built).value());
  }
  {
    MutexLock lock(shard.mu);
    shard.inflight.erase(key);
    if (plan != nullptr) {
      shard.lru.emplace_front(key, plan);
      shard.entries[key] = shard.lru.begin();
      while (shard.entries.size() > shard_capacity_) {
        shard.entries.erase(shard.lru.back().first);
        shard.lru.pop_back();
        ++shard.evictions;
      }
    }
  }
  {
    InFlight& f = *flight;
    MutexLock lock(f.mu);
    f.done = true;
    f.error = error;
    f.plan = plan;
  }
  flight->cv.NotifyAll();
  if (!error.ok()) return error;
  return plan;
}

PlanCache::Stats PlanCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    Shard& s = *shard;
    MutexLock lock(s.mu);
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    Shard& s = *shard;
    MutexLock lock(s.mu);
    total += s.entries.size();
  }
  return total;
}

void PlanCache::Clear() {
  for (const auto& shard : shards_) {
    Shard& s = *shard;
    MutexLock lock(s.mu);
    PPR_CHECK(s.inflight.empty());
    s.entries.clear();
    s.lru.clear();
  }
}

}  // namespace ppr
