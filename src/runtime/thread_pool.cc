#include "runtime/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace ppr {

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity)
    : queue_(queue_capacity != 0
                 ? queue_capacity
                 : 2 * static_cast<size_t>(std::max(num_threads, 1))) {
  PPR_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.Close();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void(int)> task) {
  {
    MutexLock lock(mu_);
    ++submitted_;
  }
  const bool accepted = queue_.Push(std::move(task));
  PPR_CHECK(accepted);  // Submit after destruction began is a caller bug
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (completed_ != submitted_) all_done_.Wait(mu_);
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop(int worker_index) {
  while (auto task = queue_.Pop()) {
    (*task)(worker_index);
    {
      MutexLock lock(mu_);
      ++completed_;
    }
    all_done_.NotifyAll();
  }
}

}  // namespace ppr
