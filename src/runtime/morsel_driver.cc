#include "runtime/morsel_driver.h"

#include <functional>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "common/mutex.h"
#include "exec/verify_hook.h"
#include "obs/telemetry/flight_recorder.h"
#include "obs/telemetry/query_log.h"
#include "obs/trace.h"
#include "runtime/plan_cache.h"

namespace ppr {

MorselDriver::MorselDriver(MorselDriverOptions options)
    : options_(options) {
  num_threads_ = options_.num_threads;
  if (num_threads_ <= 0) {
    num_threads_ = ProcessEnv().default_threads > 0
                       ? ProcessEnv().default_threads
                       : ThreadPool::HardwareThreads();
  }
  worker_arenas_.reserve(static_cast<size_t>(num_threads_));
  for (int w = 0; w < num_threads_; ++w) {
    worker_arenas_.push_back(std::make_unique<ExecArena>());
  }
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
}

int64_t MorselDriver::morsel_rows() const {
  return options_.morsel_rows > 0 ? options_.morsel_rows
                                  : ProcessEnv().morsel_rows;
}

MorselExec MorselDriver::PrepareExec() {
  MorselExec mx;
  mx.morsel_rows = options_.morsel_rows;
  mx.num_workers = num_threads_;
  mx.worker_arenas.reserve(worker_arenas_.size());
  for (const auto& arena : worker_arenas_) {
    arena->Reset();
    mx.worker_arenas.push_back(arena.get());
  }
  if (pool_ != nullptr) {
    ThreadPool* pool = pool_.get();
    mx.parallel_for = [pool](int64_t count,
                             const std::function<void(int64_t, int)>& body) {
      // `body` outlives Wait(): the kernels block in ForEachMorsel until
      // every morsel finished, so capturing it by reference is safe.
      for (int64_t m = 0; m < count; ++m) {
        pool->Submit([m, &body](int worker) { body(m, worker); });
      }
      pool->Wait();
    };
  }
  return mx;
}

ExecutionResult MorselDriver::Run(const PhysicalPlan& plan,
                                  Counter tuple_budget, TraceSink* trace,
                                  MetricsRegistry* metrics,
                                  const MorselQueryContext* verify_ctx,
                                  MorselAccounting* accounting) {
  // Force lazily-initialized process-wide state on this thread before
  // any worker touches it (the BatchExecutor::Run pattern).
  (void)ProcessEnv();
  (void)TracingEnabled();
  const bool verification_on = PlanVerificationEnabled();
  const std::shared_ptr<const PlanVerifierHooks> hooks =
      GetPlanVerifierHooks();

  const bool verify = verify_ctx != nullptr && verification_on &&
                      hooks->morsel_accounting != nullptr;
  MorselAccounting local_accounting;
  MorselAccounting* acct = accounting;
  if (acct == nullptr && verify) acct = &local_accounting;

  const MorselExec mx = PrepareExec();
  ExecutionResult result = plan.ExecuteMorsel(mx, &control_arena_,
                                              tuple_budget, trace, metrics,
                                              acct);
  if (verify) {
    PPR_CHECK(verify_ctx->query != nullptr && verify_ctx->plan != nullptr &&
              verify_ctx->db != nullptr);
    Status verdict = hooks->morsel_accounting(
        *verify_ctx->query, *verify_ctx->plan, *verify_ctx->db, *acct);
    if (!verdict.ok()) result.status = std::move(verdict);
  }

  // Query-log drain (the BatchExecutor pattern, one record per run).
  // The null check is the whole disabled-path cost.
  if (QueryLog* qlog = GlobalQueryLogIfEnabled(); qlog != nullptr) {
    QueryRecord rec;
    if (verify_ctx != nullptr && verify_ctx->query != nullptr) {
      // Cold path (the run itself dwarfs one canonicalization): recover
      // the structural fingerprint so morsel records bucket with the
      // batch records of isomorphic queries.
      rec.fingerprint = FingerprintQueryStructure(
          CanonicalizeQuery(*verify_ctx->query).structure);
    }
    rec.source = QuerySource::kMorsel;
    ClassifyStatus(result.status, &rec);
    rec.wall_ns = static_cast<int64_t>(result.seconds * 1e9);
    rec.tuples_produced = static_cast<int64_t>(result.stats.tuples_produced);
    rec.output_rows = result.status.ok() ? result.output.size() : -1;
    rec.peak_bytes = static_cast<int64_t>(result.stats.peak_bytes);
    rec.max_arity = result.stats.max_intermediate_arity;
    if (verify_ctx != nullptr && verify_ctx->plan != nullptr) {
      rec.predicted_width = static_cast<int32_t>(verify_ctx->plan->Width());
      rec.bound_headroom = rec.predicted_width - rec.max_arity;
    }
    MutexLock lock(GlobalObsMutex());
    rec.seq = qlog->Append(rec);
    if (FlightRecorder* flights = GlobalFlightRecorderIfEnabled();
        flights != nullptr) {
      (void)flights->Observe(rec, *qlog, trace);
    }
    (void)FlushQueryLogArtifact();
  }
  return result;
}

}  // namespace ppr
