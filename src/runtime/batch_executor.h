#ifndef PPR_RUNTIME_BATCH_EXECUTOR_H_
#define PPR_RUNTIME_BATCH_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "benchlib/harness.h"
#include "common/types.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"
#include "runtime/plan_cache.h"

namespace ppr {

/// Rewrites a result relation computed over canonical attribute ids back
/// to the original query's ids, with columns in ascending
/// original-attribute order — exactly the schema an uncached execution
/// of the original query would produce (root projected labels are
/// sorted). Shared by every consumer of cached canonical plans (batch
/// executor, query service), which is what keeps their answers
/// byte-identical.
Relation RemapOutputFromCanonical(const Relation& output,
                                  const std::vector<AttrId>& from_canonical);

/// One unit of batch work: evaluate `query` against the executor's
/// database with the plan `strategy` builds (seeded tie-breaks via
/// `seed`), under `tuple_budget`.
struct BatchJob {
  ConjunctiveQuery query;
  StrategyKind strategy = StrategyKind::kBucketElimination;
  uint64_t seed = 0;
  Counter tuple_budget = kCounterMax;
};

struct BatchOptions {
  /// Worker count; >= 1, or 0 to auto-pick (PPR_THREADS when set,
  /// otherwise the hardware thread count).
  int num_threads = 1;
  JoinAlgorithm join_algorithm = JoinAlgorithm::kHash;

  /// With the cache on, jobs are canonicalized and isomorphic instances
  /// share one compiled plan (built for the *canonical* query, so the
  /// shared plan is independent of which job compiles first). Off, every
  /// job plans + compiles its own query exactly as RunStrategy would.
  bool use_plan_cache = true;
  /// Capacity of the internally owned cache (ignored with `cache` set).
  size_t cache_capacity = 1024;
  /// External cache to share across batches/executors; null means the
  /// executor owns a private one.
  PlanCache* cache = nullptr;

  /// Registry the per-worker metric shards merge into at drain; null
  /// means GlobalMetrics(). The merge happens on the calling thread after
  /// all workers have finished — workers themselves never touch it.
  MetricsRegistry* metrics = nullptr;
};

/// Everything one Run() produced.
struct BatchResult {
  /// Per-job results in *input order*, regardless of which worker ran
  /// which job when.
  std::vector<ExecutionResult> results;
  /// Sum/max of the per-job ExecStats, folded in input order at drain —
  /// byte-identical across runs and thread counts (each job's stats are
  /// deterministic, and so is the fold order).
  ExecStats totals;
  /// Cache counter deltas for this batch (zeros when the cache is off).
  /// Hits and misses are deterministic thanks to single-flight compiles.
  PlanCache::Stats cache;
  /// Wall-clock for the whole batch (submit to drain).
  double seconds = 0.0;
  /// Workers actually used.
  int num_threads = 1;

  int64_t num_jobs() const { return static_cast<int64_t>(results.size()); }
};

/// Schedules batches of (query, strategy) jobs across a fixed-size worker
/// pool — the paper's workload shape, thousands of small project-join
/// queries over a tiny database, which rewards inter-query parallelism
/// and plan reuse far more than intra-query parallelism would.
///
/// Worker-state ownership: each worker owns an ExecArena (reused across
/// its jobs, never shared), a MetricsRegistry shard, and — when tracing
/// is enabled — a TraceSink shard. The hot path is lock-free except for
/// the task-queue pop and at most one plan-cache shard lock per job;
/// shards merge into the global registry/sink once, at batch drain, on
/// the calling thread. Process-wide env state (PPR_TRACE,
/// PPR_VERIFY_PLANS) is forced to initialize before workers spawn, so
/// worker threads never read the environment.
///
/// Determinism: results arrive in input order; a job's output, stats, and
/// status never depend on worker count or interleaving (cached plans are
/// compiled from the canonical query, so even "who compiled it" cannot
/// matter); batch totals fold in input order.
class BatchExecutor {
 public:
  /// The database must outlive the executor and all cached plans.
  explicit BatchExecutor(const Database& db, BatchOptions options = {});

  /// Runs all jobs to completion and drains worker shards.
  BatchResult Run(const std::vector<BatchJob>& jobs);

  /// The cache in use (owned or external); null when caching is off.
  PlanCache* cache() { return cache_; }

  int num_threads() const { return num_threads_; }

 private:
  struct WorkerState;
  /// Per-job raw telemetry a worker can capture but the drain must
  /// interpret (fingerprint, predicted width, whether this call ran the
  /// plan-cache factory). Only allocated when the query log is enabled —
  /// checking that is the single branch the disabled path pays per job.
  struct JobTelemetry;

  void ProcessJob(const BatchJob& job, WorkerState* worker,
                  ExecutionResult* slot, JobTelemetry* telem) const;

  const Database& db_;
  BatchOptions options_;
  int num_threads_ = 1;
  std::unique_ptr<PlanCache> owned_cache_;
  PlanCache* cache_ = nullptr;
  uint64_t db_fingerprint_ = 0;
};

}  // namespace ppr

#endif  // PPR_RUNTIME_BATCH_EXECUTOR_H_
