#ifndef PPR_RUNTIME_THREAD_POOL_H_
#define PPR_RUNTIME_THREAD_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "runtime/bounded_queue.h"

namespace ppr {

/// Fixed-size worker pool over a bounded MPMC task queue.
///
/// Tasks receive the index (0..size()-1) of the worker running them, so
/// callers can route each task to per-worker state (arena, metrics shard,
/// trace shard) without any synchronization — the index is stable for the
/// duration of the task and no two tasks share an index concurrently.
///
/// Submit() blocks when the queue is full (backpressure toward the
/// submitting thread); Wait() blocks until every submitted task has
/// finished. The destructor closes the queue, drains remaining tasks, and
/// joins the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` (>= 1) workers. `queue_capacity` bounds the
  /// task queue; 0 picks 2 * num_threads, enough to keep workers fed
  /// while the submitter is still enqueueing.
  explicit ThreadPool(int num_threads, size_t queue_capacity = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Closes the queue, runs whatever was already submitted, joins.
  ~ThreadPool();

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; blocks while the queue is full. Must not be called
  /// after (or concurrently with) destruction.
  void Submit(std::function<void(int worker)> task) EXCLUDES(mu_);

  /// Blocks until all tasks submitted so far have completed.
  void Wait() EXCLUDES(mu_);

  /// Number of hardware threads, never less than 1 (the value behind
  /// "num_threads = 0 means auto" knobs upstack).
  static int HardwareThreads();

 private:
  void WorkerLoop(int worker_index);

  BoundedQueue<std::function<void(int)>> queue_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar all_done_;
  int64_t submitted_ GUARDED_BY(mu_) = 0;
  int64_t completed_ GUARDED_BY(mu_) = 0;
};

}  // namespace ppr

#endif  // PPR_RUNTIME_THREAD_POOL_H_
