#ifndef PPR_RUNTIME_MORSEL_DRIVER_H_
#define PPR_RUNTIME_MORSEL_DRIVER_H_

#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "core/plan.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"
#include "runtime/thread_pool.h"

namespace ppr {

class MetricsRegistry;
class TraceSink;

struct MorselDriverOptions {
  /// Worker count; >= 1, or 0 to auto-pick (PPR_THREADS when set,
  /// otherwise the hardware thread count).
  int num_threads = 0;
  /// Rows per morsel; 0 uses PPR_MORSEL_SIZE (default 64K). Purely a
  /// performance knob: results and merged metrics are byte-identical for
  /// any positive value at any worker count.
  int64_t morsel_rows = 0;
};

/// The (query, plan, db) triple a compiled plan was built from, supplied
/// when the caller wants the post-run morsel-accounting verification
/// (the `morsel_accounting` hook of exec/verify_hook.h) to run.
struct MorselQueryContext {
  const ConjunctiveQuery* query = nullptr;
  const Plan* plan = nullptr;
  const Database* db = nullptr;
};

/// Morsel-driven intra-query parallelism over one compiled plan: the
/// complement of BatchExecutor (which parallelizes *across* queries).
/// Operators run through the columnar batch kernels
/// (relational/batch_ops.h); shared build structures are constructed on
/// the calling thread, then the probe/input side of each operator is
/// partitioned into cache-sized morsels executed across a ThreadPool.
///
/// Worker-state ownership follows the BatchExecutor design: each worker
/// slot owns a private ExecArena (reused across runs, reset per run,
/// never shared), per-morsel trace spans are recorded into private
/// shards and merged in morsel-index order, and per-morsel stats fold in
/// morsel-index order — so for a fixed morsel size the answer relation
/// and every statistic (peak_bytes included) are byte-identical across
/// worker counts, including under tuple-budget truncation.
///
/// A driver instance runs one query at a time on one thread (the same
/// single-owner contract as ExecContext); distinct drivers are fully
/// independent and may run concurrently.
class MorselDriver {
 public:
  explicit MorselDriver(MorselDriverOptions options = {});

  int num_threads() const { return num_threads_; }
  int64_t morsel_rows() const;

  /// Runs `plan` under `tuple_budget` with morsel parallelism.
  ///
  /// Observability is explicit and caller-owned, as with
  /// PhysicalPlan::ExecuteShared: spans go to `trace` when non-null,
  /// per-run stats publish into `metrics` when non-null.
  ///
  /// When `verify_ctx` is supplied and plan verification is enabled
  /// (PPR_VERIFY_PLANS / EnablePlanVerification) with a
  /// `morsel_accounting` hook installed, the run's per-operator morsel
  /// accounting is verified afterwards and a failed verdict replaces the
  /// result status. `accounting`, when non-null, receives the
  /// per-operator accounts regardless.
  ExecutionResult Run(const PhysicalPlan& plan,
                      Counter tuple_budget = kCounterMax,
                      TraceSink* trace = nullptr,
                      MetricsRegistry* metrics = nullptr,
                      const MorselQueryContext* verify_ctx = nullptr,
                      MorselAccounting* accounting = nullptr);

  /// The MorselExec handed to the kernels on the next Run() — exposed so
  /// tests and benchmarks can execute kernels directly under the
  /// driver's pool. Worker arenas are reset.
  MorselExec PrepareExec();

 private:
  MorselDriverOptions options_;
  int num_threads_ = 1;
  /// Workers outlive runs (spawned once); null when num_threads_ == 1 —
  /// a single-threaded driver runs morsels inline with zero pool
  /// overhead, which is what keeps the columnar path no slower than the
  /// row path at one thread.
  std::unique_ptr<ThreadPool> pool_;
  /// Control-side scratch (shared hash builds, merge phases), reused
  /// across runs like PhysicalPlan's internal arena.
  ExecArena control_arena_;
  /// One private arena per worker slot, reused across runs.
  std::vector<std::unique_ptr<ExecArena>> worker_arenas_;
};

}  // namespace ppr

#endif  // PPR_RUNTIME_MORSEL_DRIVER_H_
