#include "runtime/batch_executor.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <utility>

#include "common/arena.h"
#include "common/check.h"
#include "common/env.h"
#include "common/mutex.h"
#include "common/timer.h"
#include "exec/physical_plan.h"
#include "exec/verify_hook.h"
#include "obs/exporters.h"
#include "obs/telemetry/flight_recorder.h"
#include "obs/telemetry/query_log.h"
#include "obs/telemetry/stats_server.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace ppr {

Relation RemapOutputFromCanonical(const Relation& output,
                                  const std::vector<AttrId>& from_canonical) {
  const Schema& schema = output.schema();
  const int arity = schema.arity();
  if (arity == 0) return output;  // nullary: only the nonempty bit matters

  std::vector<std::pair<AttrId, int>> cols;  // (original attr, source col)
  cols.reserve(static_cast<size_t>(arity));
  for (int c = 0; c < arity; ++c) {
    const AttrId canonical = schema.attr(c);
    PPR_CHECK(canonical >= 0 &&
              static_cast<size_t>(canonical) < from_canonical.size());
    cols.emplace_back(from_canonical[static_cast<size_t>(canonical)], c);
  }
  std::sort(cols.begin(), cols.end());

  std::vector<AttrId> attrs;
  attrs.reserve(cols.size());
  for (const auto& [attr, col] : cols) attrs.push_back(attr);
  Relation remapped{Schema(std::move(attrs))};
  remapped.Reserve(output.size());
  std::vector<Value> row(static_cast<size_t>(arity));
  for (int64_t i = 0; i < output.size(); ++i) {
    for (int c = 0; c < arity; ++c) {
      row[static_cast<size_t>(c)] = output.at(i, cols[static_cast<size_t>(c)].second);
    }
    remapped.AppendRaw(row.data());
  }
  return remapped;
}

namespace {

ExecutionResult ErrorResult(Status status) {
  ExecutionResult result;
  result.status = std::move(status);
  return result;
}

}  // namespace

struct BatchExecutor::WorkerState {
  ExecArena arena;           // reused across this worker's jobs
  MetricsRegistry metrics;   // shard, merged at drain
  std::unique_ptr<TraceSink> trace;  // shard, only when tracing is on
};

struct BatchExecutor::JobTelemetry {
  /// FingerprintQueryStructure of the job's canonical structure; 0 on the
  /// uncached path (which never canonicalizes).
  uint64_t fingerprint = 0;
  /// Plan::Width() of the logical plan the job executed; -1 if the job
  /// errored before a plan existed.
  int32_t predicted_width = -1;
  /// Whether this call ran the plan-cache factory (scheduling-dependent
  /// raw material; the drain reattributes hits/misses deterministically).
  bool compiled_here = false;
};

BatchExecutor::BatchExecutor(const Database& db, BatchOptions options)
    : db_(db), options_(options) {
  num_threads_ = options_.num_threads;
  if (num_threads_ <= 0) {
    num_threads_ = ProcessEnv().default_threads > 0
                       ? ProcessEnv().default_threads
                       : ThreadPool::HardwareThreads();
  }
  if (options_.use_plan_cache) {
    if (options_.cache != nullptr) {
      cache_ = options_.cache;
    } else {
      owned_cache_ = std::make_unique<PlanCache>(options_.cache_capacity);
      cache_ = owned_cache_.get();
    }
    db_fingerprint_ = FingerprintDatabase(db_);
  }
}

void BatchExecutor::ProcessJob(const BatchJob& job, WorkerState* worker,
                               ExecutionResult* slot,
                               JobTelemetry* telem) const {
  TraceSink* trace = worker->trace.get();
  if (cache_ == nullptr) {
    // Uncached: plan + compile the original query, exactly as the
    // single-threaded RunStrategy path does.
    Plan plan = BuildStrategyPlan(job.strategy, job.query, job.seed);
    if (telem != nullptr) {
      telem->predicted_width = plan.Width();
      telem->compiled_here = true;
    }
    Result<PhysicalPlan> compiled = PhysicalPlan::Compile(
        job.query, plan, db_, options_.join_algorithm);
    if (!compiled.ok()) {
      *slot = ErrorResult(compiled.status());
      return;
    }
    *slot = compiled->ExecuteShared(&worker->arena, job.tuple_budget, trace,
                                    &worker->metrics);
    return;
  }

  const CanonicalQuery canon = CanonicalizeQuery(job.query);
  PlanCacheKey key;
  key.structure = canon.structure;
  key.strategy = job.strategy;
  key.seed = job.seed;
  key.join_algorithm = options_.join_algorithm;
  key.db = &db_;
  key.db_fingerprint = db_fingerprint_;
  if (telem != nullptr) {
    telem->fingerprint = FingerprintQueryStructure(canon.structure);
  }

  Result<std::shared_ptr<const CachedPlan>> cached = cache_->GetOrCompile(
      key,
      [this, &canon, &job]() -> Result<CachedPlan> {
        Plan plan =
            BuildStrategyPlan(job.strategy, canon.query, job.seed);
        const int width = plan.Width();
        Result<PhysicalPlan> compiled = PhysicalPlan::Compile(
            canon.query, plan, db_, options_.join_algorithm);
        if (!compiled.ok()) return compiled.status();
        return CachedPlan{canon.query, std::move(*compiled), width};
      },
      telem != nullptr ? &telem->compiled_here : nullptr);
  if (!cached.ok()) {
    *slot = ErrorResult(cached.status());
    return;
  }
  if (telem != nullptr) {
    telem->predicted_width = static_cast<int32_t>((*cached)->plan_width);
  }

  ExecutionResult result = (*cached)->physical.ExecuteShared(
      &worker->arena, job.tuple_budget, trace, &worker->metrics);
  if (result.status.ok()) {
    result.output = RemapOutputFromCanonical(result.output, canon.from_canonical);
  }
  *slot = std::move(result);
}

BatchResult BatchExecutor::Run(const std::vector<BatchJob>& jobs) {
  // Force every lazily-initialized process-wide singleton on this thread
  // before any worker exists: the env snapshot, the trace gate, the
  // verifier hooks/gate, and the telemetry gates. Workers then only ever
  // read them.
  (void)ProcessEnv();
  (void)TracingEnabled();
  (void)PlanVerificationEnabled();
  (void)GetPlanVerifierHooks();
  (void)QueryLogEnabled();
  (void)FlightRecorderEnabled();
  (void)StartStatsServerFromEnv();

  BatchResult out;
  out.num_threads = num_threads_;
  out.results.resize(jobs.size());
  const PlanCache::Stats cache_before =
      cache_ != nullptr ? cache_->stats() : PlanCache::Stats{};

  const bool tracing = GlobalTraceSinkIfEnabled() != nullptr;
  // The whole disabled-telemetry cost: this one branch, hoisted out of
  // the per-job path entirely (workers see a null telemetry slot and
  // skip every capture).
  const bool telemetry = GlobalQueryLogIfEnabled() != nullptr;
  std::vector<WorkerState> workers(static_cast<size_t>(num_threads_));
  if (tracing) {
    for (WorkerState& w : workers) w.trace = std::make_unique<TraceSink>();
  }
  std::vector<JobTelemetry> telem(telemetry ? jobs.size() : 0);

  WallTimer timer;
  {
    ThreadPool pool(num_threads_);
    for (size_t i = 0; i < jobs.size(); ++i) {
      const BatchJob* job = &jobs[i];
      ExecutionResult* slot = &out.results[i];
      JobTelemetry* tslot = telemetry ? &telem[i] : nullptr;
      pool.Submit([this, job, slot, tslot, &workers](int worker) {
        ProcessJob(*job, &workers[static_cast<size_t>(worker)], slot, tslot);
      });
    }
    pool.Wait();
  }
  out.seconds = timer.ElapsedSeconds();

  // Drain, single-threaded from here on. Totals fold in input order so
  // the aggregate is byte-identical however the jobs interleaved.
  for (const ExecutionResult& r : out.results) {
    out.totals.tuples_produced += r.stats.tuples_produced;
    out.totals.num_joins += r.stats.num_joins;
    out.totals.num_projections += r.stats.num_projections;
    out.totals.num_semijoins += r.stats.num_semijoins;
    out.totals.NoteIntermediate(r.stats.max_intermediate_arity,
                                r.stats.max_intermediate_rows);
    out.totals.NotePeakBytes(r.stats.peak_bytes);
  }
  if (cache_ != nullptr) {
    const PlanCache::Stats after = cache_->stats();
    out.cache.hits = after.hits - cache_before.hits;
    out.cache.misses = after.misses - cache_before.misses;
    out.cache.evictions = after.evictions - cache_before.evictions;
  }

  const auto publish = [&](MetricsRegistry* target) {
    for (const WorkerState& w : workers) target->Merge(w.metrics);
    target->AddCounter("runtime.batch.jobs",
                       static_cast<int64_t>(jobs.size()));
    target->AddCounter("runtime.batch.runs", 1);
    int64_t timeouts = 0;
    for (const ExecutionResult& r : out.results) {
      if (r.status.code() == StatusCode::kResourceExhausted) ++timeouts;
      target->RecordHistogram("runtime.job.tuples",
                              static_cast<uint64_t>(r.stats.tuples_produced));
    }
    target->AddCounter("runtime.batch.timeouts", timeouts);
    target->RaiseMax("runtime.batch.threads", num_threads_);
    if (cache_ != nullptr) {
      target->AddCounter("runtime.cache.hits", out.cache.hits);
      target->AddCounter("runtime.cache.misses", out.cache.misses);
      target->AddCounter("runtime.cache.evictions", out.cache.evictions);
    }
  };
  // Touching the process-global registry or sink requires the obs
  // capability: two executors may Run() concurrently, and before this
  // lock their drains raced each other on the shared state.
  if (options_.metrics != nullptr) {
    publish(options_.metrics);
  } else {
    MutexLock lock(GlobalObsMutex());
    publish(&GlobalMetrics());
  }

  if (tracing) {
    MutexLock lock(GlobalObsMutex());
    for (const WorkerState& w : workers) MergeIntoGlobalSink(*w.trace);
    (void)FlushTraceArtifacts();
  }

  // Query-log drain, after the trace merge so flight dumps can snapshot
  // this batch's spans from the global sink. Single-threaded, input
  // order — that (not the workers' interleaving) is what makes the
  // exported JSONL byte-identical across worker counts.
  if (telemetry) {
    if (QueryLog* qlog = GlobalQueryLogIfEnabled(); qlog != nullptr) {
      MutexLock lock(GlobalObsMutex());
      FlightRecorder* flights = GlobalFlightRecorderIfEnabled();
      const TraceSink* sink = tracing ? GlobalTraceSinkIfEnabled() : nullptr;

      // Deterministic cache-hit reattribution: per-job compiled_here is
      // scheduling-dependent (any of a key's jobs may win the
      // single-flight compile), but *whether* a key compiled this batch
      // is not. Among each compiled key's jobs, the first in input order
      // is recorded as the miss; jobs of keys that never compiled were
      // served from a pre-existing entry and are all hits.
      using GroupKey = std::tuple<uint64_t, int32_t, uint64_t>;
      const auto group_of = [&](size_t i) {
        return GroupKey{telem[i].fingerprint,
                        static_cast<int32_t>(jobs[i].strategy), jobs[i].seed};
      };
      std::set<GroupKey> compiled;
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (telem[i].compiled_here) compiled.insert(group_of(i));
      }
      std::set<GroupKey> miss_taken;
      for (size_t i = 0; i < jobs.size(); ++i) {
        const ExecutionResult& r = out.results[i];
        QueryRecord rec;
        rec.fingerprint = telem[i].fingerprint;
        rec.strategy = static_cast<int32_t>(jobs[i].strategy);
        rec.source = QuerySource::kBatch;
        if (cache_ == nullptr) {
          rec.cache_hit = false;
        } else if (const GroupKey g = group_of(i); compiled.count(g) > 0) {
          rec.cache_hit = !miss_taken.insert(g).second;
        } else {
          rec.cache_hit = true;
        }
        ClassifyStatus(r.status, &rec);
        rec.wall_ns = static_cast<int64_t>(r.seconds * 1e9);
        rec.tuples_produced = static_cast<int64_t>(r.stats.tuples_produced);
        rec.output_rows = r.status.ok() ? r.output.size() : -1;
        rec.peak_bytes = static_cast<int64_t>(r.stats.peak_bytes);
        rec.max_arity = r.stats.max_intermediate_arity;
        rec.predicted_width = telem[i].predicted_width;
        rec.bound_headroom = telem[i].predicted_width >= 0
                                 ? telem[i].predicted_width - rec.max_arity
                                 : 0;
        rec.seq = qlog->Append(rec);
        if (flights != nullptr) (void)flights->Observe(rec, *qlog, sink);
      }
      (void)FlushQueryLogArtifact();
    }
  }
  return out;
}

}  // namespace ppr
