#ifndef PPR_RUNTIME_BOUNDED_QUEUE_H_
#define PPR_RUNTIME_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/check.h"

namespace ppr {

/// Bounded multi-producer multi-consumer queue: a mutex-protected deque
/// with two condition variables. This is deliberately the simplest
/// correct MPMC design — tasks here are whole query evaluations
/// (microseconds to seconds of work), so queue transfer cost is noise
/// and provable correctness under tsan beats a lock-free ring.
///
/// The bound provides backpressure: producers block in Push() while the
/// queue is full, so a batch submitter can never race ahead of the
/// workers by more than `capacity` tasks worth of memory.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    PPR_CHECK(capacity_ > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed), then enqueues.
  /// Returns false — and drops `value` — when the queue was closed.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the queue is closed and
  /// drained), then dequeues. Returns nullopt only after Close() once all
  /// remaining items have been consumed, so closing never loses work.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Wakes all blocked producers (their pushes fail) and lets consumers
  /// drain the remaining items before Pop() returns nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ppr

#endif  // PPR_RUNTIME_BOUNDED_QUEUE_H_
