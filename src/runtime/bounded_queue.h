#ifndef PPR_RUNTIME_BOUNDED_QUEUE_H_
#define PPR_RUNTIME_BOUNDED_QUEUE_H_

#include <deque>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"

namespace ppr {

/// Bounded multi-producer multi-consumer queue: a mutex-protected deque
/// with two condition variables. This is deliberately the simplest
/// correct MPMC design — tasks here are whole query evaluations
/// (microseconds to seconds of work), so queue transfer cost is noise
/// and provable correctness (tsan at runtime, -Wthread-safety at
/// compile time) beats a lock-free ring.
///
/// The bound provides backpressure: producers block in Push() while the
/// queue is full, so a batch submitter can never race ahead of the
/// workers by more than `capacity` tasks worth of memory.

/// Why a non-blocking TryPush failed (or did not).
enum class QueuePushOutcome : uint8_t {
  kOk = 0,
  /// The queue held `capacity` items — overload, caller should shed.
  kFull = 1,
  /// Close() was called — caller should report shutdown, not overload.
  kClosed = 2,
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    PPR_CHECK(capacity_ > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed), then enqueues.
  /// Returns false — and drops `value` — when the queue was closed.
  bool Push(T value) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push: enqueues if there is room right now, otherwise
  /// reports why not — overload shedding needs full vs. closed
  /// distinguished (transient kOverloaded vs. terminal kShuttingDown).
  /// Moves from `value` only on kOk, so the caller still owns it (and
  /// any reply callback inside it) on failure.
  QueuePushOutcome TryPush(T& value) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) return QueuePushOutcome::kClosed;
      if (items_.size() >= capacity_) return QueuePushOutcome::kFull;
      items_.push_back(std::move(value));
    }
    not_empty_.NotifyOne();
    return QueuePushOutcome::kOk;
  }

  /// Blocks until an item is available (or the queue is closed and
  /// drained), then dequeues. Returns nullopt only after Close() once all
  /// remaining items have been consumed, so closing never loses work.
  std::optional<T> Pop() EXCLUDES(mu_) {
    std::optional<T> value;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
      if (items_.empty()) return std::nullopt;
      value.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return value;
  }

  /// Wakes all blocked producers (their pushes fail) and lets consumers
  /// drain the remaining items before Pop() returns nullopt.
  void Close() EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace ppr

#endif  // PPR_RUNTIME_BOUNDED_QUEUE_H_
