#ifndef PPR_RUNTIME_PLAN_CACHE_H_
#define PPR_RUNTIME_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "common/status.h"
#include "common/types.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"

namespace ppr {

/// A query renamed onto canonical attribute ids 0..n-1 with atoms in a
/// canonical order, plus the mapping back. Two queries with equal
/// `structure` bytes are guaranteed isomorphic (the encoding fully
/// describes the canonical query, so equal encodings mean both inputs
/// rename onto the *same* query) — that soundness is what makes
/// fingerprint-keyed plan sharing safe. The converse is heuristic:
/// attribute ranks come from Weisfeiler-Leman-style color refinement over
/// the atom incidence structure, which separates every vertex of the
/// rigid random instances the paper generates but can split isomorphic
/// copies of highly symmetric queries into distinct fingerprints (a
/// missed cache hit, never a wrong answer).
struct CanonicalQuery {
  /// The relabeled query: attributes 0..n-1 by canonical rank, atoms
  /// sorted by (relation, canonical args), free vars sorted.
  ConjunctiveQuery query;
  /// Deterministic byte encoding of `query` — the structural fingerprint.
  std::string structure;
  /// canonical id -> original attribute id (size = number of attributes).
  std::vector<AttrId> from_canonical;
};

/// Canonicalizes `query` as described above. Cost is a few refinement
/// rounds over the atom list — comparable to building one logical plan,
/// and amortized away by every cache hit it enables.
CanonicalQuery CanonicalizeQuery(const ConjunctiveQuery& query);

/// Hash of a CanonicalQuery::structure encoding — the 64-bit structural
/// fingerprint the query log records per job (obs/telemetry/query_log.h).
/// Deterministic across runs and platforms (fixed-constant SplitMix64
/// mixing, no seed), so exported JSONL fingerprints are comparable
/// between runs. Collisions only blur telemetry grouping; cache
/// soundness never rests on this hash (keys compare structure bytes).
uint64_t FingerprintQueryStructure(const std::string& structure);

/// Content fingerprint of a catalog: relation names, arities, and tuple
/// data. The paper's databases are tiny (the 3-COLOR `edge` relation has
/// six tuples), so hashing content per batch is noise; it catches re-Put
/// relations that would invalidate compiled plans.
uint64_t FingerprintDatabase(const Database& db);

/// Cache key: everything plan construction + compilation depends on.
/// `db` is the identity of the catalog instance (compiled leaves hold
/// pointers into it, so plans must never be shared across Database
/// objects even with equal content); `db_fingerprint` additionally pins
/// the content version.
struct PlanCacheKey {
  std::string structure;  // CanonicalQuery::structure
  StrategyKind strategy = StrategyKind::kStraightforward;
  uint64_t seed = 0;
  JoinAlgorithm join_algorithm = JoinAlgorithm::kHash;
  const Database* db = nullptr;
  uint64_t db_fingerprint = 0;

  bool operator==(const PlanCacheKey&) const = default;
};

uint64_t HashPlanCacheKey(const PlanCacheKey& key);

/// One cached compilation: the canonical query it was compiled for and
/// the shared physical plan. Immutable after construction; workers run it
/// via PhysicalPlan::ExecuteShared (const) with their own arenas.
struct CachedPlan {
  ConjunctiveQuery query;
  PhysicalPlan physical;
  /// Static join width of the logical plan the physical plan was lowered
  /// from (for bench/explain reporting without keeping the logical tree).
  int plan_width = 0;
  /// AnalyzePlan's tuples_produced_bound for the plan, when the factory
  /// computed it (the query service's admission controller gates on it);
  /// negative means "not analyzed". +infinity is a valid value: the
  /// analyzer could not bound the plan.
  double tuples_bound = -1.0;
};

/// Sharded LRU cache of compiled plans keyed by structural fingerprint,
/// so isomorphic generated instances share one compilation.
///
/// Concurrency: each shard is an independent annotated Mutex + LRU list
/// (every shard field is GUARDED_BY its shard mutex — see plan_cache.cc
/// — so the sharding contract is compiler-checked under
/// PPR_THREAD_SAFETY); a lookup touches exactly one shard lock and never
/// blocks on another shard's compile. Misses are *single-flight*: the first thread to miss a key
/// compiles it with the shard lock released while every later arrival
/// waits for that one compilation — so one compile per distinct key, and
/// hit/miss counters are deterministic regardless of worker interleaving
/// (hit = "did not run the factory"). Eviction counts are deterministic
/// whenever capacity is never exceeded; under eviction pressure the LRU
/// order (and thus which keys evict) depends on scheduling.
class PlanCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  /// `capacity` bounds the number of cached plans across all shards
  /// (rounded up to at least one per shard).
  explicit PlanCache(size_t capacity = 1024, int num_shards = 8);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Builds a CachedPlan on a miss. Runs without any cache lock held;
  /// must be pure given the key (same key -> same plan), which holds for
  /// BuildStrategyPlan + PhysicalPlan::Compile on the canonical query.
  using Factory = std::function<Result<CachedPlan>()>;

  /// Returns the cached plan for `key`, compiling it via `factory` on the
  /// first miss. Concurrent requests for the same key wait for the single
  /// in-flight compile. Factory errors propagate to all waiters and are
  /// not cached (the next request retries). `compiled_here`, when
  /// non-null, is set to whether *this* call ran the factory — per-call
  /// raw material for telemetry (which job actually compiled depends on
  /// scheduling, so the query log reattributes deterministically at
  /// drain; see BatchExecutor).
  Result<std::shared_ptr<const CachedPlan>> GetOrCompile(
      const PlanCacheKey& key, const Factory& factory,
      bool* compiled_here = nullptr);

  /// Counter totals across shards.
  Stats stats() const;

  /// Cached (completed) entries across shards.
  size_t size() const;

  /// Drops all cached entries (counters keep their values). Must not race
  /// with in-flight compiles.
  void Clear();

 private:
  struct InFlight;
  struct Shard;

  Shard& ShardFor(const PlanCacheKey& key);

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ppr

#endif  // PPR_RUNTIME_PLAN_CACHE_H_
