#include "csp/csp.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "encode/kcolor.h"
#include "relational/exec_context.h"
#include "relational/ops.h"

namespace ppr {

bool Constraint::Satisfied(const std::vector<Value>& assignment) const {
  std::vector<Value> tuple;
  tuple.reserve(scope.size());
  for (int v : scope) tuple.push_back(assignment[static_cast<size_t>(v)]);
  return allowed.ContainsTuple(tuple);
}

Status Csp::Validate() const {
  for (const Constraint& c : constraints) {
    if (c.scope.empty()) {
      return Status::InvalidArgument("empty constraint scope");
    }
    if (static_cast<int>(c.scope.size()) != c.allowed.arity()) {
      return Status::InvalidArgument("scope size != relation arity");
    }
    for (size_t i = 0; i < c.scope.size(); ++i) {
      if (c.scope[i] < 0 || c.scope[i] >= num_vars()) {
        return Status::InvalidArgument("scope variable out of range");
      }
      for (size_t j = i + 1; j < c.scope.size(); ++j) {
        if (c.scope[i] == c.scope[j]) {
          return Status::InvalidArgument("repeated variable in scope");
        }
      }
    }
  }
  return Status::Ok();
}

bool Csp::IsSolution(const std::vector<Value>& assignment) const {
  PPR_CHECK(static_cast<int>(assignment.size()) == num_vars());
  for (int v = 0; v < num_vars(); ++v) {
    const auto& domain = domains[static_cast<size_t>(v)];
    if (std::find(domain.begin(), domain.end(),
                  assignment[static_cast<size_t>(v)]) == domain.end()) {
      return false;
    }
  }
  return std::all_of(
      constraints.begin(), constraints.end(),
      [&](const Constraint& c) { return c.Satisfied(assignment); });
}

Csp ColoringCsp(const Graph& g, int num_colors) {
  Csp csp;
  std::vector<Value> palette;
  for (Value c = 1; c <= num_colors; ++c) palette.push_back(c);
  csp.domains.assign(static_cast<size_t>(g.num_vertices()), palette);
  const Relation edge = ColoringEdgeRelation(num_colors);
  for (const auto& [u, v] : g.EdgesInInsertionOrder()) {
    Relation allowed{Schema({u, v})};
    for (int64_t i = 0; i < edge.size(); ++i) allowed.AddTuple(edge.row(i));
    csp.constraints.push_back(Constraint{{u, v}, std::move(allowed)});
  }
  return csp;
}

Csp CnfCsp(const Cnf& cnf) {
  Csp csp;
  csp.domains.assign(static_cast<size_t>(cnf.num_vars), {0, 1});
  for (const auto& clause : cnf.clauses) {
    std::vector<int> scope;
    std::vector<AttrId> attrs;
    for (const Literal& lit : clause) {
      scope.push_back(lit.var);
      attrs.push_back(lit.var);
    }
    Relation allowed{Schema(attrs)};
    const unsigned rows = 1u << clause.size();
    for (unsigned row = 0; row < rows; ++row) {
      bool satisfies = false;
      for (size_t i = 0; i < clause.size(); ++i) {
        const bool value = ((row >> i) & 1u) != 0;
        if (value != clause[i].negated) {
          satisfies = true;
          break;
        }
      }
      if (!satisfies) continue;
      std::vector<Value> tuple(clause.size());
      for (size_t i = 0; i < clause.size(); ++i) {
        tuple[i] = static_cast<Value>((row >> i) & 1u);
      }
      allowed.AddTuple(tuple);
    }
    csp.constraints.push_back(Constraint{std::move(scope),
                                         std::move(allowed)});
  }
  return csp;
}

CspAsQuery CspToQuery(const Csp& csp) {
  PPR_CHECK(csp.Validate().ok());
  CspAsQuery out;
  for (size_t i = 0; i < csp.constraints.size(); ++i) {
    const Constraint& c = csp.constraints[i];
    const std::string name = "c" + std::to_string(i);
    // Store the relation with positional column ids; the atom binds the
    // scope variables.
    std::vector<AttrId> cols(c.scope.size());
    for (size_t p = 0; p < cols.size(); ++p) {
      cols[p] = static_cast<AttrId>(p);
    }
    Relation stored{Schema(cols)};
    for (int64_t r = 0; r < c.allowed.size(); ++r) {
      stored.AddTuple(c.allowed.row(r));
    }
    out.db.Put(name, std::move(stored));
    Atom atom;
    atom.relation = name;
    atom.args.assign(c.scope.begin(), c.scope.end());
    out.query.AddAtom(std::move(atom));
  }
  // Boolean emulation as in the paper: select the first constrained var.
  PPR_CHECK(!out.query.atoms().empty());
  out.query.SetFreeVars({out.query.atoms().front().args.front()});
  return out;
}

Result<Csp> QueryToCsp(const ConjunctiveQuery& query, const Database& db) {
  Status valid = query.Validate(db);
  if (!valid.ok()) return valid;

  AttrId max_attr = -1;
  for (const Atom& atom : query.atoms()) {
    for (AttrId a : atom.args) max_attr = std::max(max_attr, a);
  }
  Csp csp;
  csp.domains.assign(static_cast<size_t>(max_attr + 1), {});

  ExecContext ctx;
  for (const Atom& atom : query.atoms()) {
    const Relation* stored = *db.Get(atom.relation);
    Relation bound = BindAtom(*stored, atom.args, ctx);
    Constraint c;
    c.scope.assign(bound.schema().attrs().begin(),
                   bound.schema().attrs().end());
    // Extend each scope variable's domain with the values this column
    // can take.
    for (int col = 0; col < bound.arity(); ++col) {
      auto& domain = csp.domains[static_cast<size_t>(bound.schema().attr(col))];
      for (int64_t r = 0; r < bound.size(); ++r) {
        if (std::find(domain.begin(), domain.end(), bound.at(r, col)) ==
            domain.end()) {
          domain.push_back(bound.at(r, col));
        }
      }
    }
    c.allowed = std::move(bound);
    csp.constraints.push_back(std::move(c));
  }
  // Unconstrained variables (possible only via gaps in the attr ids) get
  // a singleton dummy domain so assignments stay well-formed.
  for (auto& domain : csp.domains) {
    if (domain.empty()) domain.push_back(0);
  }
  return csp;
}

namespace {

// Forward-checking state: remaining candidate values per variable.
struct SearchState {
  std::vector<std::vector<Value>> candidates;
  std::vector<int> assigned;  // -1 = unassigned, else index into candidates
};

// True when `assignment` (partial, -1 entries unassigned) can still
// satisfy constraint `c` — i.e. some allowed tuple matches all assigned
// scope positions.
bool ConstraintViable(const Constraint& c, const std::vector<Value>& value_of,
                      const std::vector<uint8_t>& is_assigned) {
  for (int64_t r = 0; r < c.allowed.size(); ++r) {
    bool matches = true;
    for (size_t p = 0; p < c.scope.size(); ++p) {
      const size_t v = static_cast<size_t>(c.scope[p]);
      if (is_assigned[v] &&
          value_of[v] != c.allowed.at(r, static_cast<int>(p))) {
        matches = false;
        break;
      }
    }
    if (matches) return true;
  }
  return false;
}

bool Backtrack(const Csp& csp, std::vector<Value>& value_of,
               std::vector<uint8_t>& is_assigned, int unassigned_left) {
  if (unassigned_left == 0) return true;

  // Minimum-remaining-values: the unassigned variable with the fewest
  // viable values (each checked by constraint viability).
  int best_var = -1;
  std::vector<Value> best_values;
  for (int v = 0; v < csp.num_vars(); ++v) {
    if (is_assigned[static_cast<size_t>(v)]) continue;
    std::vector<Value> viable;
    for (Value value : csp.domains[static_cast<size_t>(v)]) {
      value_of[static_cast<size_t>(v)] = value;
      is_assigned[static_cast<size_t>(v)] = 1;
      bool ok = true;
      for (const Constraint& c : csp.constraints) {
        if (std::find(c.scope.begin(), c.scope.end(), v) == c.scope.end()) {
          continue;
        }
        if (!ConstraintViable(c, value_of, is_assigned)) {
          ok = false;
          break;
        }
      }
      is_assigned[static_cast<size_t>(v)] = 0;
      if (ok) viable.push_back(value);
    }
    if (best_var < 0 || viable.size() < best_values.size()) {
      best_var = v;
      best_values = std::move(viable);
      if (best_values.empty()) return false;  // dead end
    }
  }

  for (Value value : best_values) {
    value_of[static_cast<size_t>(best_var)] = value;
    is_assigned[static_cast<size_t>(best_var)] = 1;
    if (Backtrack(csp, value_of, is_assigned, unassigned_left - 1)) {
      return true;
    }
    is_assigned[static_cast<size_t>(best_var)] = 0;
  }
  return false;
}

}  // namespace

std::optional<std::vector<Value>> SolveCsp(const Csp& csp) {
  PPR_CHECK(csp.Validate().ok());
  std::vector<Value> value_of(static_cast<size_t>(csp.num_vars()), 0);
  std::vector<uint8_t> is_assigned(static_cast<size_t>(csp.num_vars()), 0);
  if (!Backtrack(csp, value_of, is_assigned, csp.num_vars())) {
    return std::nullopt;
  }
  return value_of;
}

}  // namespace ppr
