#ifndef PPR_CSP_CSP_H_
#define PPR_CSP_CSP_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "encode/sat.h"
#include "graph/graph.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"
#include "relational/relation.h"

namespace ppr {

/// One extensional constraint: the variables in `scope` must jointly take
/// a value combination listed in `allowed` (whose schema's attributes are
/// exactly the scope variables, in order).
struct Constraint {
  std::vector<int> scope;
  Relation allowed;

  /// True when the (complete) assignment satisfies this constraint.
  bool Satisfied(const std::vector<Value>& assignment) const;
};

/// A finite-domain constraint-satisfaction problem. The paper's starting
/// point is that "evaluating Boolean project-join queries is essentially
/// the same as solving constraint-satisfaction problems" (Kolaitis &
/// Vardi [26]); this type and the converters below make the
/// correspondence executable in both directions.
struct Csp {
  /// domains[v] lists the allowed values of variable v.
  std::vector<std::vector<Value>> domains;
  std::vector<Constraint> constraints;

  int num_vars() const { return static_cast<int>(domains.size()); }

  /// Structural sanity: scopes in range, distinct scope variables,
  /// constraint arities match their relations.
  Status Validate() const;

  /// True when the complete `assignment` satisfies every constraint.
  bool IsSolution(const std::vector<Value>& assignment) const;
};

/// k-coloring as a CSP: one variable per vertex with domain {1..k}, one
/// difference constraint per edge. Mirrors KColorQuery.
Csp ColoringCsp(const Graph& g, int num_colors);

/// CNF satisfiability as a CSP: Boolean domains, one constraint per
/// clause allowing its 2^k - 1 satisfying assignments. Mirrors SatQuery.
Csp CnfCsp(const Cnf& cnf);

/// A CSP rendered as a Boolean project-join query over a fresh database:
/// each constraint becomes a stored relation ("c0", "c1", ...) and one
/// atom over its scope. The query is nonempty iff the CSP is solvable —
/// the Kolaitis-Vardi direction the paper exploits to turn coloring
/// instances into queries.
struct CspAsQuery {
  ConjunctiveQuery query;
  Database db;
};
CspAsQuery CspToQuery(const Csp& csp);

/// The other direction: a (Boolean reading of a) conjunctive query over a
/// database becomes a CSP whose variables are the query's attributes and
/// whose constraints are the atoms' bound relations. Variable domains are
/// the values seen in the corresponding columns. Fails when the query
/// does not validate against the database.
Result<Csp> QueryToCsp(const ConjunctiveQuery& query, const Database& db);

/// Backtracking CSP solver with minimum-remaining-values ordering and
/// forward checking — an independent decision procedure used to
/// cross-validate the query engine. Returns a satisfying assignment, or
/// nullopt when unsatisfiable.
std::optional<std::vector<Value>> SolveCsp(const Csp& csp);

}  // namespace ppr

#endif  // PPR_CSP_CSP_H_
