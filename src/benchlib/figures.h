#ifndef PPR_BENCHLIB_FIGURES_H_
#define PPR_BENCHLIB_FIGURES_H_

#include <functional>
#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"

namespace ppr {

/// Options shared by the figure benches. Every bench accepts
/// --seeds=N, --budget=N and --free=F on its command line (see
/// ParseSweepFlag) so the sweeps can be scaled up toward the paper's
/// full parameters on a bigger machine.
struct SweepOptions {
  /// Strategies to compare (columns of the table).
  std::vector<StrategyKind> strategies;
  /// Instances per x-value; the tables report medians, as the paper does.
  int seeds = 3;
  /// Tuple budget standing in for the paper's wall-clock timeout.
  Counter budget = 2'000'000;
  /// Fraction of vertices made free; 0 means Boolean queries.
  double free_fraction = 0.0;
  /// Emit CSV instead of aligned tables (--csv=1).
  bool csv = false;
};

/// One x-axis point of a coloring sweep: a label (e.g. the density or the
/// order) and an instance generator.
struct SweepPoint {
  std::string x;
  std::function<Graph(Rng&)> make;
};

/// One x-axis point of a generic query sweep (used by the SAT benches):
/// the generator builds the full conjunctive query.
struct QuerySweepPoint {
  std::string x;
  std::function<ConjunctiveQuery(Rng&)> make;
};

/// Runs a 3-COLOR sweep and prints two tables: median execution seconds
/// (TIMEOUT when the median run exceeded the budget) and median tuples
/// produced, one column per strategy. This is the engine behind the
/// reproductions of Figs. 3-9.
void RunColoringSweep(const std::string& title, const std::string& x_label,
                      const std::vector<SweepPoint>& points,
                      const SweepOptions& options);

/// Generic variant of RunColoringSweep over an arbitrary database and
/// query generator (the SAT sweeps of Section 7 use this).
void RunQuerySweep(const std::string& title, const std::string& x_label,
                   const Database& db,
                   const std::vector<QuerySweepPoint>& points,
                   const SweepOptions& options);

/// Parses "--name=value" from argv; returns fallback when absent.
int64_t ParseSweepFlag(int argc, char** argv, const std::string& name,
                       int64_t fallback);
double ParseSweepFlagDouble(int argc, char** argv, const std::string& name,
                            double fallback);

/// Applies the common command-line overrides to `options`.
void ApplyCommonFlags(int argc, char** argv, SweepOptions* options);

}  // namespace ppr

#endif  // PPR_BENCHLIB_FIGURES_H_
