#ifndef PPR_BENCHLIB_BATCH_WORKLOAD_H_
#define PPR_BENCHLIB_BATCH_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "query/conjunctive_query.h"

namespace ppr {

/// Returns `count` isomorphic copies of `base`: each copy applies a
/// random bijective relabeling over the query's attribute ids and
/// shuffles the atom list order. Semantically each copy is the same
/// query up to renaming — the workload shape the plan cache exists for
/// (thousands of generated instances sharing a handful of structures).
/// Deterministic in `seed`; copies never include `base` verbatim unless a
/// sampled permutation happens to be the identity.
std::vector<ConjunctiveQuery> PermutedCopies(const ConjunctiveQuery& base,
                                             int count, uint64_t seed);

/// Parameters for a 3-COLOR-style batch: `num_bases` random graphs, each
/// expanded into `copies_per_base` isomorphic query copies, shuffled
/// together. With a structural plan cache the expected hit rate is
/// (jobs - num_bases) / jobs (modulo canonicalizer misses on symmetric
/// graphs, which random instances essentially never are).
struct ColorBatchSpec {
  int num_bases = 20;
  int copies_per_base = 10;
  int num_vertices = 16;
  double density = 1.5;  // edges per vertex, the paper's m/n knob
  uint64_t seed = 1;
};

/// Builds the batch described by `spec` (k-COLOR Boolean queries via
/// KColorQuery over RandomGraphWithDensity instances).
std::vector<ConjunctiveQuery> IsomorphicColorBatch(const ColorBatchSpec& spec);

}  // namespace ppr

#endif  // PPR_BENCHLIB_BATCH_WORKLOAD_H_
