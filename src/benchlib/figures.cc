#include "benchlib/figures.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "encode/kcolor.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"

namespace ppr {

void RunColoringSweep(const std::string& title, const std::string& x_label,
                      const std::vector<SweepPoint>& points,
                      const SweepOptions& options) {
  Database db;
  AddColoringRelations(3, &db);
  std::vector<QuerySweepPoint> query_points;
  for (const SweepPoint& point : points) {
    const double free_fraction = options.free_fraction;
    auto make_graph = point.make;
    query_points.push_back(QuerySweepPoint{
        point.x, [make_graph, free_fraction](Rng& rng) {
          Graph g = make_graph(rng);
          return free_fraction > 0.0
                     ? KColorQueryNonBoolean(g, free_fraction, rng)
                     : KColorQuery(g);
        }});
  }
  RunQuerySweep(title, x_label, db, query_points, options);
}

void RunQuerySweep(const std::string& title, const std::string& x_label,
                   const Database& db,
                   const std::vector<QuerySweepPoint>& points,
                   const SweepOptions& options) {
  std::vector<std::string> series;
  for (StrategyKind kind : options.strategies) {
    series.push_back(StrategyName(kind));
  }
  std::printf("== %s ==\n", title.c_str());
  std::printf("(median over %d seeds, tuple budget %lld, %s)\n",
              options.seeds, static_cast<long long>(options.budget),
              options.free_fraction > 0.0
                  ? ("non-Boolean, " + std::to_string(options.free_fraction) +
                     " free")
                        .c_str()
                  : "Boolean");

  SeriesTable time_table(x_label, series);
  SeriesTable work_table(x_label, series);

  for (const QuerySweepPoint& point : points) {
    std::vector<std::string> time_cells;
    std::vector<std::string> work_cells;
    for (StrategyKind kind : options.strategies) {
      std::vector<double> seconds;
      std::vector<double> tuples;
      for (int seed = 0; seed < options.seeds; ++seed) {
        Rng rng(static_cast<uint64_t>(seed) * 7919 + 17);
        ConjunctiveQuery query = point.make(rng);
        StrategyRun run = RunStrategy(kind, query, db, options.budget,
                                      static_cast<uint64_t>(seed));
        if (run.timed_out) {
          seconds.push_back(std::numeric_limits<double>::infinity());
          tuples.push_back(std::numeric_limits<double>::infinity());
        } else {
          seconds.push_back(run.exec_seconds);
          tuples.push_back(static_cast<double>(run.tuples_produced));
        }
      }
      time_cells.push_back(FormatSeconds(Median(seconds)));
      const double med_tuples = Median(tuples);
      work_cells.push_back(std::isinf(med_tuples)
                               ? "TIMEOUT"
                               : std::to_string(static_cast<long long>(
                                     med_tuples)));
    }
    time_table.AddRow(point.x, time_cells);
    work_table.AddRow(point.x, work_cells);
  }

  std::printf("\n-- median execution time (seconds) --\n");
  if (options.csv) {
    time_table.PrintCsv();
  } else {
    time_table.Print();
  }
  std::printf("\n-- median tuples produced --\n");
  if (options.csv) {
    work_table.PrintCsv();
  } else {
    work_table.Print();
  }
  std::printf("\n");
}

int64_t ParseSweepFlag(int argc, char** argv, const std::string& name,
                       int64_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoll(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

double ParseSweepFlagDouble(int argc, char** argv, const std::string& name,
                            double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stod(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

void ApplyCommonFlags(int argc, char** argv, SweepOptions* options) {
  options->seeds =
      static_cast<int>(ParseSweepFlag(argc, argv, "seeds", options->seeds));
  options->budget = ParseSweepFlag(argc, argv, "budget", options->budget);
  options->free_fraction =
      ParseSweepFlagDouble(argc, argv, "free", options->free_fraction);
  options->csv = ParseSweepFlag(argc, argv, "csv", options->csv ? 1 : 0) != 0;
}

}  // namespace ppr
