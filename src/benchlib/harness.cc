#include "benchlib/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/strategies.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "graph/elimination.h"
#include "obs/exporters.h"
#include "obs/metrics.h"

namespace ppr {
namespace {

uint64_t SecondsToNs(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9);
}

}  // namespace

std::vector<StrategyKind> AllStrategies() {
  return {StrategyKind::kStraightforward, StrategyKind::kEarlyProjection,
          StrategyKind::kReordering, StrategyKind::kBucketElimination,
          StrategyKind::kTreewidth};
}

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kStraightforward:
      return "straightforward";
    case StrategyKind::kEarlyProjection:
      return "early";
    case StrategyKind::kReordering:
      return "reorder";
    case StrategyKind::kBucketElimination:
      return "bucket";
    case StrategyKind::kTreewidth:
      return "treewidth";
  }
  return "?";
}

Plan BuildStrategyPlan(StrategyKind kind, const ConjunctiveQuery& query,
                       uint64_t seed) {
  return BuildStrategyPlanWithCertificate(kind, query, seed, nullptr);
}

Plan BuildStrategyPlanWithCertificate(StrategyKind kind,
                                      const ConjunctiveQuery& query,
                                      uint64_t seed,
                                      RewriteCertificate* certificate) {
  Rng rng(seed);
  switch (kind) {
    case StrategyKind::kStraightforward:
      return StraightforwardPlan(query, certificate);
    case StrategyKind::kEarlyProjection:
      return EarlyProjectionPlan(query, certificate);
    case StrategyKind::kReordering:
      return ReorderingPlan(query, &rng, certificate);
    case StrategyKind::kBucketElimination:
      return BucketEliminationPlanMcs(query, &rng, certificate);
    case StrategyKind::kTreewidth: {
      const Graph join_graph = BuildJoinGraph(query);
      const EliminationOrder order =
          McsEliminationOrder(join_graph, query.free_vars(), &rng);
      return TreewidthPlan(query, order, certificate);
    }
  }
  PPR_CHECK(false);
  return Plan();
}

StrategyRun RunStrategy(StrategyKind kind, const ConjunctiveQuery& query,
                        const Database& db, Counter tuple_budget,
                        uint64_t seed) {
  StrategyRun run;
  WallTimer plan_timer;
  Plan plan = BuildStrategyPlan(kind, query, seed);
  run.plan_seconds = plan_timer.ElapsedSeconds();
  run.plan_width = plan.Width();

  // Lower once, execute once: exec_seconds measures pure data movement,
  // with all schema/column-map derivation accounted to compile_seconds.
  WallTimer compile_timer;
  Result<PhysicalPlan> compiled = PhysicalPlan::Compile(query, plan, db);
  run.compile_seconds = compile_timer.ElapsedSeconds();
  PPR_CHECK(compiled.ok());

  ExecutionResult result = compiled->Execute(tuple_budget);
  run.exec_seconds = result.seconds;
  run.timed_out = result.status.code() == StatusCode::kResourceExhausted;
  PPR_CHECK(run.timed_out || result.status.ok());
  run.nonempty = !run.timed_out && result.nonempty();
  run.tuples_produced = result.stats.tuples_produced;
  run.max_intermediate_rows = result.stats.max_intermediate_rows;
  run.peak_bytes = result.stats.peak_bytes;

  // Phase accounting for WriteBenchMetrics. Recorded after every timer
  // has stopped, so the publication cost never leaks into the measured
  // phases.
  MutexLock lock(GlobalObsMutex());
  MetricsRegistry& metrics = GlobalMetrics();
  metrics.AddCounter("bench.runs", 1);
  if (run.timed_out) metrics.AddCounter("bench.timeouts", 1);
  metrics.RecordHistogram("bench.plan.ns", SecondsToNs(run.plan_seconds));
  metrics.RecordHistogram("bench.compile.ns",
                          SecondsToNs(run.compile_seconds));
  metrics.RecordHistogram("bench.exec.ns", SecondsToNs(run.exec_seconds));
  return run;
}

Status WriteBenchMetrics(const std::string& path) {
  MutexLock lock(GlobalObsMutex());
  return WriteFileAtomicEnough(path, GlobalMetrics().ToJsonLines());
}

double Median(std::vector<double> values) {
  PPR_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  return values[(values.size() - 1) / 2];
}

std::string FormatSeconds(double seconds) {
  if (std::isinf(seconds)) return "TIMEOUT";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", seconds);
  return buf;
}

SeriesTable::SeriesTable(std::string x_label,
                         std::vector<std::string> series) {
  header_.push_back(std::move(x_label));
  for (auto& s : series) header_.push_back(std::move(s));
}

void SeriesTable::AddRow(const std::string& x,
                         const std::vector<std::string>& cells) {
  PPR_CHECK(cells.size() + 1 == header_.size());
  std::vector<std::string> row;
  row.push_back(x);
  row.insert(row.end(), cells.begin(), cells.end());
  rows_.push_back(std::move(row));
}

void SeriesTable::Print() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::ostringstream line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line << "  ";
      line << row[c];
      if (c + 1 < row.size()) {
        line << std::string(widths[c] - row[c].size(), ' ');
      }
    }
    std::printf("%s\n", line.str().c_str());
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

void SeriesTable::PrintCsv() const {
  auto print_csv_row = [](const std::vector<std::string>& row) {
    std::ostringstream line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line << ",";
      line << row[c];
    }
    std::printf("%s\n", line.str().c_str());
  };
  print_csv_row(header_);
  for (const auto& row : rows_) print_csv_row(row);
}

}  // namespace ppr
