#ifndef PPR_BENCHLIB_HARNESS_H_
#define PPR_BENCHLIB_HARNESS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/plan.h"
#include "core/rewrite_certificate.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"

namespace ppr {

/// The optimization methods compared throughout Section 6.
enum class StrategyKind {
  kStraightforward,    // Section 3 (forced listed order, no pushing)
  kEarlyProjection,    // Section 4 (listed order, projection pushing)
  kReordering,         // Section 4 (greedy order + projection pushing)
  kBucketElimination,  // Section 5 (MCS-ordered bucket elimination)
  kTreewidth,          // extension: Algorithm 3 over an MCS decomposition
};

/// All strategies in presentation order.
std::vector<StrategyKind> AllStrategies();

/// Short column label, e.g. "bucket".
const char* StrategyName(StrategyKind kind);

/// Builds the plan for `kind`; randomized tie-breaks are seeded with
/// `seed` so runs are reproducible.
Plan BuildStrategyPlan(StrategyKind kind, const ConjunctiveQuery& query,
                       uint64_t seed);

/// BuildStrategyPlan, additionally filling `certificate` with the
/// strategy's rewrite trace (core/rewrite_certificate.h) for the
/// semantic certificate checker. Same plans, same seeding.
Plan BuildStrategyPlanWithCertificate(StrategyKind kind,
                                      const ConjunctiveQuery& query,
                                      uint64_t seed,
                                      RewriteCertificate* certificate);

/// One measured run of a strategy on a query.
struct StrategyRun {
  double plan_seconds = 0.0;     // time to construct the logical plan
  double compile_seconds = 0.0;  // logical -> physical lowering time
  double exec_seconds = 0.0;     // execution time (the paper's y-axis)
  bool timed_out = false;        // tuple budget exhausted
  bool nonempty = false;         // Boolean answer (valid when !timed_out)
  Counter tuples_produced = 0;
  Counter max_intermediate_rows = 0;
  Counter peak_bytes = 0;  // largest operator scratch+output footprint
  int plan_width = 0;      // static join width of the executed plan
};

/// Plans and executes `kind` on (query, db) under a tuple budget.
///
/// Each run also records its phase times into the global metrics
/// registry (obs/metrics.h) as the `bench.plan.ns` / `bench.compile.ns`
/// / `bench.exec.ns` histograms plus `bench.runs` / `bench.timeouts`
/// counters, so a whole bench's phase distributions can be dumped with
/// WriteBenchMetrics after the sweep.
StrategyRun RunStrategy(StrategyKind kind, const ConjunctiveQuery& query,
                        const Database& db, Counter tuple_budget,
                        uint64_t seed);

/// Writes the global metrics registry as JSONL to `path` (the
/// `BENCH_*.json` companion artifact: per-phase time histograms from
/// RunStrategy plus any `exec.*`/`op.*` metrics traced runs published).
Status WriteBenchMetrics(const std::string& path);

/// Median of `values`; timeouts should be encoded as +infinity by the
/// caller. PPR_CHECK-fails on empty input. Even-sized inputs return the
/// lower-middle element (a real observation, as in the paper's medians).
double Median(std::vector<double> values);

/// Renders seconds with 4 significant digits, or "TIMEOUT" for +infinity.
std::string FormatSeconds(double seconds);

/// Fixed-width table printer for the figure benches: one row per x value,
/// one column per series.
class SeriesTable {
 public:
  /// `x_label` heads the first column; `series` the remaining ones.
  SeriesTable(std::string x_label, std::vector<std::string> series);

  /// Adds a row; `cells.size()` must match the series count.
  void AddRow(const std::string& x, const std::vector<std::string>& cells);

  /// Prints header + rows to stdout.
  void Print() const;

  /// Prints the table as CSV (for plotting the figures from the sweeps).
  void PrintCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppr

#endif  // PPR_BENCHLIB_HARNESS_H_
