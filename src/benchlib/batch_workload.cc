#include "benchlib/batch_workload.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "encode/kcolor.h"
#include "graph/generators.h"

namespace ppr {

std::vector<ConjunctiveQuery> PermutedCopies(const ConjunctiveQuery& base,
                                             int count, uint64_t seed) {
  PPR_CHECK(count >= 0);
  const std::vector<AttrId> attrs = base.AllAttrs();
  auto index_of = [&attrs](AttrId a) {
    return static_cast<size_t>(
        std::lower_bound(attrs.begin(), attrs.end(), a) - attrs.begin());
  };

  Rng rng(seed);
  std::vector<ConjunctiveQuery> copies;
  copies.reserve(static_cast<size_t>(count));
  for (int c = 0; c < count; ++c) {
    // Bijection over the used attribute ids (the id *set* is preserved,
    // only the assignment of structure to ids changes).
    std::vector<AttrId> image = attrs;
    rng.Shuffle(image);
    std::vector<Atom> atoms = base.atoms();
    for (Atom& atom : atoms) {
      for (AttrId& a : atom.args) a = image[index_of(a)];
    }
    rng.Shuffle(atoms);
    std::vector<AttrId> free_vars = base.free_vars();
    for (AttrId& a : free_vars) a = image[index_of(a)];
    copies.emplace_back(std::move(atoms), std::move(free_vars));
  }
  return copies;
}

std::vector<ConjunctiveQuery> IsomorphicColorBatch(
    const ColorBatchSpec& spec) {
  PPR_CHECK(spec.num_bases >= 1 && spec.copies_per_base >= 1);
  Rng rng(spec.seed);
  std::vector<ConjunctiveQuery> batch;
  batch.reserve(static_cast<size_t>(spec.num_bases) *
                static_cast<size_t>(spec.copies_per_base));
  for (int b = 0; b < spec.num_bases; ++b) {
    const Graph g =
        RandomGraphWithDensity(spec.num_vertices, spec.density, rng);
    const ConjunctiveQuery base = KColorQuery(g);
    for (ConjunctiveQuery& copy :
         PermutedCopies(base, spec.copies_per_base, rng.NextU64())) {
      batch.push_back(std::move(copy));
    }
  }
  rng.Shuffle(batch);
  return batch;
}

}  // namespace ppr
