#include "optsearch/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ppr {

CostModel CostModel::ForQuery(const ConjunctiveQuery& query,
                              const Database& db, double domain_size) {
  PPR_CHECK(domain_size >= 1.0);
  CostModel model;
  model.domain_size_ = domain_size;
  for (const Atom& atom : query.atoms()) {
    Result<const Relation*> rel = db.Get(atom.relation);
    PPR_CHECK(rel.ok());
    model.atom_rows_.push_back(static_cast<double>((*rel)->size()));
    std::vector<AttrId> attrs = atom.DistinctAttrs();
    std::sort(attrs.begin(), attrs.end());
    model.atom_attrs_.push_back(std::move(attrs));
  }
  return model;
}

double CostModel::LeftDeepCost(const std::vector<int>& order) const {
  PPR_CHECK(static_cast<int>(order.size()) == num_atoms());
  PPR_CHECK(!order.empty());

  std::vector<AttrId> prefix_attrs = atom_attrs(order[0]);
  double card = atom_rows(order[0]);
  double cost = card;  // base scan
  for (size_t i = 1; i < order.size(); ++i) {
    const std::vector<AttrId>& attrs = atom_attrs(order[i]);
    int shared = 0;
    for (AttrId a : attrs) {
      if (std::binary_search(prefix_attrs.begin(), prefix_attrs.end(), a)) {
        ++shared;
      }
    }
    card = card * atom_rows(order[i]) / std::pow(domain_size_, shared);
    cost += card;
    // Merge attrs into the sorted prefix set.
    std::vector<AttrId> merged;
    merged.reserve(prefix_attrs.size() + attrs.size());
    std::set_union(prefix_attrs.begin(), prefix_attrs.end(), attrs.begin(),
                   attrs.end(), std::back_inserter(merged));
    prefix_attrs = std::move(merged);
  }
  return cost;
}

}  // namespace ppr
