#ifndef PPR_OPTSEARCH_PLAN_SEARCH_H_
#define PPR_OPTSEARCH_PLAN_SEARCH_H_

#include <vector>

#include "common/rng.h"
#include "optsearch/cost_model.h"

namespace ppr {

/// Outcome of a join-order search — the "compile time" measurements of
/// Fig. 2 come from `seconds` and `plans_evaluated`.
struct PlanSearchResult {
  std::vector<int> order;       // left-deep join order found
  double estimated_cost = 0.0;  // cost-model estimate of that order
  double seconds = 0.0;         // wall-clock planning time
  int64_t plans_evaluated = 0;  // cost-model evaluations performed
};

/// Exhaustive System-R-style dynamic program over atom subsets for the
/// cheapest left-deep order. Exponential: O(2^m * m) states; requires
/// m <= 22 atoms and at most 64 distinct attributes.
PlanSearchResult ExhaustiveDpSearch(const CostModel& model);

/// GEQO-like genetic search over join orders, standing in for PostgreSQL's
/// genetic query optimizer (the paper ran the naive queries through it):
/// edge-recombination crossover, steady-state replacement, pool size
/// 2^(m/2) clamped to [16, 1024], generations equal to the pool size.
PlanSearchResult GeqoSearch(const CostModel& model, Rng& rng);

/// Simulated-annealing search over left-deep join orders (Ioannidis &
/// Wong [25], the incomplete-search alternative the paper's introduction
/// cites): random restarts, swap-neighbourhood moves, Metropolis
/// acceptance with geometric cooling. Comparable effort to GeqoSearch.
PlanSearchResult SimulatedAnnealingSearch(const CostModel& model, Rng& rng);

/// The planner-simulator facade mirroring PostgreSQL's policy: exhaustive
/// DP below `geqo_threshold` relations, genetic search at or above it.
/// This is what the *naive* translation pays on every query (Fig. 2).
PlanSearchResult CostBasedPlanSearch(const CostModel& model, Rng& rng,
                                     int geqo_threshold = 12);

/// The planning work for the *straightforward* translation: the join
/// order is forced by the SQL nesting, so the planner only validates it —
/// a single cost evaluation.
PlanSearchResult StraightforwardPlanning(const CostModel& model);

}  // namespace ppr

#endif  // PPR_OPTSEARCH_PLAN_SEARCH_H_
