#ifndef PPR_OPTSEARCH_COST_MODEL_H_
#define PPR_OPTSEARCH_COST_MODEL_H_

#include <vector>

#include "common/types.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"

namespace ppr {

/// Textbook cardinality-estimation model for join-order search, standing
/// in for PostgreSQL's planner cost model in the Fig. 2 reproduction.
///
/// Every attribute is assumed uniform over a domain of `domain_size`
/// values and independent of the others; an atom over k attributes with R
/// rows is a predicate of selectivity R / domain^k. Joining a prefix of
/// estimated cardinality C with an atom of R rows sharing s attributes
/// yields C * R / domain^s.
class CostModel {
 public:
  /// Builds the model from the stored relation sizes. `domain_size` is the
  /// number of distinct values per attribute (3 for 3-COLOR, 2 for SAT).
  static CostModel ForQuery(const ConjunctiveQuery& query, const Database& db,
                            double domain_size);

  int num_atoms() const { return static_cast<int>(atom_rows_.size()); }
  double domain_size() const { return domain_size_; }
  double atom_rows(int i) const { return atom_rows_[static_cast<size_t>(i)]; }
  const std::vector<AttrId>& atom_attrs(int i) const {
    return atom_attrs_[static_cast<size_t>(i)];
  }

  /// Estimated total cost of the left-deep join order `order` (a
  /// permutation of atom indices): the sum of the estimated cardinalities
  /// of all intermediate results — the quantity a cost-based planner
  /// minimizes, and a proxy for execution time.
  double LeftDeepCost(const std::vector<int>& order) const;

 private:
  double domain_size_ = 1.0;
  std::vector<double> atom_rows_;
  std::vector<std::vector<AttrId>> atom_attrs_;  // sorted distinct attrs
};

}  // namespace ppr

#endif  // PPR_OPTSEARCH_COST_MODEL_H_
