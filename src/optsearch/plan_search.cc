#include "optsearch/plan_search.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/timer.h"

namespace ppr {

PlanSearchResult ExhaustiveDpSearch(const CostModel& model) {
  const int m = model.num_atoms();
  PPR_CHECK(m >= 1 && m <= 22);

  // Attribute ids remapped to bit positions (at most 64 distinct attrs).
  std::map<AttrId, int> attr_bit;
  for (int i = 0; i < m; ++i) {
    for (AttrId a : model.atom_attrs(i)) {
      attr_bit.emplace(a, static_cast<int>(attr_bit.size()));
    }
  }
  PPR_CHECK(attr_bit.size() <= 64);
  std::vector<uint64_t> atom_mask(static_cast<size_t>(m), 0);
  for (int i = 0; i < m; ++i) {
    for (AttrId a : model.atom_attrs(i)) {
      atom_mask[static_cast<size_t>(i)] |= uint64_t{1} << attr_bit.at(a);
    }
  }

  PlanSearchResult result;
  ScopedTimer timer(&result.seconds);
  const size_t states = size_t{1} << m;
  std::vector<double> cost(states, 0.0);
  std::vector<double> card(states, 0.0);
  std::vector<uint64_t> attrs(states, 0);
  std::vector<int8_t> last(states, -1);
  int64_t evaluated = 0;

  for (size_t s = 1; s < states; ++s) {
    // Cardinality of the full join of subset s (order-independent under
    // the independence assumption): extend s minus its lowest atom.
    const int a0 = std::countr_zero(s);
    const size_t rest = s & (s - 1);
    if (rest == 0) {
      card[s] = model.atom_rows(a0);
      attrs[s] = atom_mask[static_cast<size_t>(a0)];
      cost[s] = card[s];
      last[s] = static_cast<int8_t>(a0);
      continue;
    }
    const int shared = std::popcount(attrs[rest] &
                                     atom_mask[static_cast<size_t>(a0)]);
    card[s] = card[rest] * model.atom_rows(a0) /
              std::pow(model.domain_size(), shared);
    attrs[s] = attrs[rest] | atom_mask[static_cast<size_t>(a0)];

    // Best last atom: cost[s] = min_a cost[s \ a] + card[s].
    double best = 0.0;
    int best_a = -1;
    for (size_t bits = s; bits != 0; bits &= bits - 1) {
      const int a = std::countr_zero(bits);
      const double c = cost[s & ~(size_t{1} << a)];
      ++evaluated;
      if (best_a < 0 || c < best) {
        best = c;
        best_a = a;
      }
    }
    cost[s] = best + card[s];
    last[s] = static_cast<int8_t>(best_a);
  }

  result.estimated_cost = cost[states - 1];
  result.plans_evaluated = evaluated;
  result.order.resize(static_cast<size_t>(m));
  size_t s = states - 1;
  for (int pos = m - 1; pos >= 0; --pos) {
    const int a = last[s];
    result.order[static_cast<size_t>(pos)] = a;
    s &= ~(size_t{1} << a);
  }
  timer.Stop();  // stop before return: NRVO may alias result with the callee's
  return result;
}

namespace {

// Edge-recombination crossover (the GEQO operator): builds a child path
// that prefers edges present in either parent.
std::vector<int> EdgeRecombination(const std::vector<int>& p1,
                                   const std::vector<int>& p2, Rng& rng) {
  const int m = static_cast<int>(p1.size());
  std::vector<std::vector<int>> adjacency(static_cast<size_t>(m));
  auto add_edges = [&](const std::vector<int>& p) {
    for (int i = 0; i < m; ++i) {
      for (int d : {-1, 1}) {
        const int j = i + d;
        if (j < 0 || j >= m) continue;
        auto& adj = adjacency[static_cast<size_t>(p[static_cast<size_t>(i)])];
        const int v = p[static_cast<size_t>(j)];
        if (std::find(adj.begin(), adj.end(), v) == adj.end()) {
          adj.push_back(v);
        }
      }
    }
  };
  add_edges(p1);
  add_edges(p2);

  std::vector<uint8_t> used(static_cast<size_t>(m), 0);
  std::vector<int> child;
  child.reserve(static_cast<size_t>(m));
  int current = p1[0];
  for (;;) {
    child.push_back(current);
    used[static_cast<size_t>(current)] = 1;
    if (static_cast<int>(child.size()) == m) break;
    // Remove `current` from all adjacency lists.
    for (auto& adj : adjacency) {
      adj.erase(std::remove(adj.begin(), adj.end(), current), adj.end());
    }
    // Next: unused neighbor with the fewest remaining neighbors.
    const auto& adj = adjacency[static_cast<size_t>(current)];
    int next = -1;
    size_t best_fanout = 0;
    std::vector<int> ties;
    for (int v : adj) {
      if (used[static_cast<size_t>(v)]) continue;
      const size_t fanout = adjacency[static_cast<size_t>(v)].size();
      if (next < 0 || fanout < best_fanout) {
        next = v;
        best_fanout = fanout;
        ties.assign(1, v);
      } else if (fanout == best_fanout) {
        ties.push_back(v);
      }
    }
    if (next < 0) {
      // Dead end: pick a random unused atom.
      std::vector<int> unused;
      for (int v = 0; v < m; ++v) {
        if (!used[static_cast<size_t>(v)]) unused.push_back(v);
      }
      next = unused[static_cast<size_t>(rng.NextBounded(unused.size()))];
    } else if (ties.size() > 1) {
      next = ties[static_cast<size_t>(rng.NextBounded(ties.size()))];
    }
    current = next;
  }
  return child;
}

}  // namespace

PlanSearchResult GeqoSearch(const CostModel& model, Rng& rng) {
  const int m = model.num_atoms();
  PPR_CHECK(m >= 1);
  PlanSearchResult result;
  ScopedTimer timer(&result.seconds);

  const int pool_size = static_cast<int>(
      std::clamp(std::pow(2.0, static_cast<double>(m) / 2.0), 16.0, 1024.0));
  const int generations = pool_size;

  struct Individual {
    std::vector<int> order;
    double cost;
  };
  std::vector<Individual> pool;
  pool.reserve(static_cast<size_t>(pool_size));
  std::vector<int> base(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) base[static_cast<size_t>(i)] = i;
  for (int i = 0; i < pool_size; ++i) {
    std::vector<int> order = base;
    rng.Shuffle(order);
    const double cost = model.LeftDeepCost(order);
    ++result.plans_evaluated;
    pool.push_back(Individual{std::move(order), cost});
  }
  std::sort(pool.begin(), pool.end(),
            [](const Individual& a, const Individual& b) {
              return a.cost < b.cost;
            });

  // Steady-state GA with rank-biased parent selection (quadratic bias
  // toward the front of the sorted pool, like GEQO's linear bias).
  auto pick_parent = [&]() -> const Individual& {
    const double r = rng.NextDouble();
    const size_t idx = static_cast<size_t>(r * r * pool.size());
    return pool[std::min(idx, pool.size() - 1)];
  };
  for (int gen = 0; gen < generations && m >= 2; ++gen) {
    const std::vector<int> child =
        EdgeRecombination(pick_parent().order, pick_parent().order, rng);
    const double cost = model.LeftDeepCost(child);
    ++result.plans_evaluated;
    if (cost < pool.back().cost) {
      // Replace the worst, keeping the pool sorted.
      pool.pop_back();
      auto it = std::lower_bound(pool.begin(), pool.end(), cost,
                                 [](const Individual& ind, double c) {
                                   return ind.cost < c;
                                 });
      pool.insert(it, Individual{child, cost});
    }
  }

  result.order = pool.front().order;
  result.estimated_cost = pool.front().cost;
  timer.Stop();
  return result;
}

PlanSearchResult SimulatedAnnealingSearch(const CostModel& model, Rng& rng) {
  const int m = model.num_atoms();
  PPR_CHECK(m >= 1);
  PlanSearchResult result;
  ScopedTimer timer(&result.seconds);

  std::vector<int> current(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) current[static_cast<size_t>(i)] = i;
  rng.Shuffle(current);
  double current_cost = model.LeftDeepCost(current);
  ++result.plans_evaluated;
  std::vector<int> best = current;
  double best_cost = current_cost;

  // Effort comparable to GeqoSearch: ~2 * pool-size cost evaluations.
  const int steps = static_cast<int>(std::clamp(
      2.0 * std::pow(2.0, static_cast<double>(m) / 2.0), 32.0, 2048.0));
  // Initial temperature on the order of the starting cost; geometric
  // cooling to ~1e-3 of it by the final step.
  double temperature = std::max(current_cost, 1.0);
  const double cooling =
      std::pow(1e-3, 1.0 / std::max(1, steps - 1));

  for (int step = 0; step < steps && m >= 2; ++step) {
    std::vector<int> candidate = current;
    const size_t i = static_cast<size_t>(rng.NextBounded(candidate.size()));
    const size_t j = static_cast<size_t>(rng.NextBounded(candidate.size()));
    std::swap(candidate[i], candidate[j]);
    const double cost = model.LeftDeepCost(candidate);
    ++result.plans_evaluated;
    const double delta = cost - current_cost;
    if (delta <= 0.0 ||
        rng.NextDouble() < std::exp(-delta / temperature)) {
      current = std::move(candidate);
      current_cost = cost;
      if (current_cost < best_cost) {
        best = current;
        best_cost = current_cost;
      }
    }
    temperature *= cooling;
  }

  result.order = std::move(best);
  result.estimated_cost = best_cost;
  timer.Stop();
  return result;
}

PlanSearchResult CostBasedPlanSearch(const CostModel& model, Rng& rng,
                                     int geqo_threshold) {
  if (model.num_atoms() < geqo_threshold) {
    return ExhaustiveDpSearch(model);
  }
  return GeqoSearch(model, rng);
}

PlanSearchResult StraightforwardPlanning(const CostModel& model) {
  PlanSearchResult result;
  ScopedTimer timer(&result.seconds);
  result.order.resize(static_cast<size_t>(model.num_atoms()));
  for (int i = 0; i < model.num_atoms(); ++i) {
    result.order[static_cast<size_t>(i)] = i;
  }
  result.estimated_cost = model.LeftDeepCost(result.order);
  result.plans_evaluated = 1;
  timer.Stop();
  return result;
}

}  // namespace ppr
