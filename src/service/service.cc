#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <utility>

#include "analysis/width_analyzer.h"
#include "common/env.h"
#include "exec/physical_plan.h"
#include "exec/verify_hook.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/obs_lock.h"
#include "obs/telemetry/flight_recorder.h"
#include "obs/telemetry/query_log.h"
#include "obs/telemetry/stats_server.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "runtime/batch_executor.h"
#include "runtime/thread_pool.h"

namespace ppr {
namespace {

/// Query-log artifact rewrite cadence: the service appends records one
/// request at a time (unlike the batch drain, which flushes per batch),
/// so flushing every record would rewrite the JSONL file per query.
constexpr uint64_t kFlushEvery = 64;

int ResolveWorkers(int requested) {
  if (requested > 0) return requested;
  const int env = ProcessEnv().default_threads;
  if (env > 0) return env;
  return ThreadPool::HardwareThreads();
}

}  // namespace

QueryService::QueryService(const Database& db, ServiceConfig config)
    : db_(db),
      config_(std::move(config)),
      num_workers_(ResolveWorkers(config_.num_workers)),
      db_fingerprint_(FingerprintDatabase(db)),
      admission_(config_.admission),
      cache_(config_.cache_capacity > 0 ? config_.cache_capacity : 1024),
      queue_(config_.queue_depth > 0 ? config_.queue_depth : 1) {
  // Force every lazily-initialized process-wide singleton on this thread
  // before any worker exists (the BatchExecutor::Run discipline): the env
  // snapshot, the trace/telemetry gates, the verifier hooks, and the
  // stats server. Workers then only ever read them.
  (void)ProcessEnv();
  (void)TracingEnabled();
  (void)PlanVerificationEnabled();
  (void)GetPlanVerifierHooks();
  (void)QueryLogEnabled();
  (void)FlightRecorderEnabled();
  (void)StartStatsServerFromEnv();

  workers_.reserve(static_cast<size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Drain(); }

uint64_t QueryService::Now() const {
  if (config_.clock) return config_.clock();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void QueryService::Submit(const ServiceRequest& request, ReplyFn done) {
  {
    MutexLock lock(mu_);
    ++counters_.requests;
  }

  if (draining_.load(std::memory_order_acquire)) {
    Refuse(ServiceStatus::kShuttingDown,
           Status::Unavailable("service is draining"), 0, request.strategy,
           &ServiceCounters::shed_draining, "service.shed.draining", done);
    return;
  }

  StrategyKind strategy = config_.default_strategy;
  if (request.strategy >= 0) {
    if (request.strategy > static_cast<int32_t>(StrategyKind::kTreewidth)) {
      Refuse(ServiceStatus::kInvalid,
             Status::InvalidArgument("unknown strategy ordinal " +
                                     std::to_string(request.strategy)),
             0, request.strategy, &ServiceCounters::invalid, "service.invalid",
             done);
      return;
    }
    strategy = static_cast<StrategyKind>(request.strategy);
  }
  const int32_t ordinal = static_cast<int32_t>(strategy);

  // Front-end work on the calling thread: parse, validate, canonicalize,
  // and fetch the compiled plan (single-flight compile on a miss).
  Result<ParsedQuery> parsed = ParseQuery(request.query_text);
  if (!parsed.ok()) {
    Refuse(ServiceStatus::kInvalid, parsed.status(), 0, ordinal,
           &ServiceCounters::invalid, "service.invalid", done);
    return;
  }
  if (Status valid = parsed->query.Validate(db_); !valid.ok()) {
    Refuse(ServiceStatus::kInvalid, std::move(valid), 0, ordinal,
           &ServiceCounters::invalid, "service.invalid", done);
    return;
  }

  CanonicalQuery canon = CanonicalizeQuery(parsed->query);
  const uint64_t fingerprint = FingerprintQueryStructure(canon.structure);
  PlanCacheKey key;
  key.structure = canon.structure;
  key.strategy = strategy;
  key.seed = request.seed;
  key.join_algorithm = JoinAlgorithm::kHash;
  key.db = &db_;
  key.db_fingerprint = db_fingerprint_;

  bool compiled_here = false;
  Result<std::shared_ptr<const CachedPlan>> cached = cache_.GetOrCompile(
      key,
      [this, &canon, strategy, &request]() -> Result<CachedPlan> {
        Plan plan = BuildStrategyPlan(strategy, canon.query, request.seed);
        const int width = plan.Width();
        // Planning-time admission evidence: the analyzer's static row
        // bound rides in the cache entry, so warm-cache requests admit
        // without re-analyzing.
        const StaticAnalysis analysis = AnalyzePlan(canon.query, plan, db_);
        Result<PhysicalPlan> compiled =
            PhysicalPlan::Compile(canon.query, plan, db_, JoinAlgorithm::kHash);
        if (!compiled.ok()) return compiled.status();
        CachedPlan out{canon.query, std::move(*compiled), width};
        out.tuples_bound = analysis.status.ok()
                               ? analysis.tuples_produced_bound
                               : std::numeric_limits<double>::infinity();
        return out;
      },
      &compiled_here);
  if (!cached.ok()) {
    Refuse(ServiceStatus::kError, cached.status(), fingerprint, ordinal,
           &ServiceCounters::errors, "service.errors", done);
    return;
  }

  const double bound = (*cached)->tuples_bound >= 0.0
                           ? (*cached)->tuples_bound
                           : std::numeric_limits<double>::infinity();
  switch (admission_.Admit(request.client_id, bound, Now())) {
    case AdmitDecision::kAdmit:
      break;
    case AdmitDecision::kShedQuota:
      Refuse(ServiceStatus::kOverloaded,
             Status::Unavailable("client quota exhausted, retry after backoff"),
             fingerprint, ordinal, &ServiceCounters::shed_quota,
             "service.shed.quota", done);
      return;
    case AdmitDecision::kShedBound:
      Refuse(ServiceStatus::kOverloaded,
             Status::Unavailable(
                 "predicted tuple bound " + std::to_string(bound) +
                 " does not fit the currently available admission headroom"),
             fingerprint, ordinal, &ServiceCounters::shed_bound,
             "service.shed.bound", done);
      return;
    case AdmitDecision::kRejectBound:
      Refuse(ServiceStatus::kRejected,
             Status::Unavailable(
                 "predicted tuple bound " + std::to_string(bound) +
                 " exceeds the configured admission headroom " +
                 std::to_string(admission_.config().max_inflight_tuple_bound) +
                 "; this query cannot be admitted under this configuration"),
             fingerprint, ordinal, &ServiceCounters::rejected_bound,
             "service.rejected_bound", done);
      return;
  }

  Task task;
  task.request_id = request.request_id;
  task.client_id = request.client_id;
  task.strategy = strategy;
  task.seed = request.seed;
  task.budget = config_.max_tuple_budget;
  if (request.tuple_budget > 0 &&
      request.tuple_budget <
          static_cast<uint64_t>(config_.max_tuple_budget)) {
    task.budget = static_cast<Counter>(request.tuple_budget);
  }
  task.deadline_ms =
      request.deadline_ms > 0 ? request.deadline_ms : config_.default_deadline_ms;
  task.arrival_ns = Now();
  task.fingerprint = fingerprint;
  task.admitted_bound = bound;
  task.plan = *cached;
  task.from_canonical = canon.from_canonical;
  task.cache_hit = !compiled_here;
  task.done = done;  // copy: Submit keeps `done` for the shed paths below

  inflight_.fetch_add(1, std::memory_order_acq_rel);
  const QueuePushOutcome pushed = queue_.TryPush(task);
  if (pushed == QueuePushOutcome::kOk) {
    {
      MutexLock lock(mu_);
      ++counters_.admitted;
    }
    MutexLock obs(GlobalObsMutex());
    GlobalMetrics().AddCounter("service.admitted", 1);
    GlobalMetrics().RaiseMax("service.inflight",
                             inflight_.load(std::memory_order_acquire));
    return;
  }

  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  admission_.Release(bound);
  if (pushed == QueuePushOutcome::kClosed) {
    Refuse(ServiceStatus::kShuttingDown,
           Status::Unavailable("service is draining"), fingerprint, ordinal,
           &ServiceCounters::shed_draining, "service.shed.draining", done);
  } else {
    Refuse(ServiceStatus::kOverloaded,
           Status::Unavailable("admission queue full (capacity " +
                               std::to_string(queue_.capacity()) + ")"),
           fingerprint, ordinal, &ServiceCounters::shed_queue,
           "service.shed.queue", done);
  }
}

ServiceReply QueryService::Execute(const ServiceRequest& request) {
  struct Latch {
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    ServiceReply reply GUARDED_BY(mu);
  };
  auto latch = std::make_shared<Latch>();
  Submit(request, [latch](ServiceReply reply) {
    MutexLock lock(latch->mu);
    latch->reply = std::move(reply);
    latch->done = true;
    latch->cv.NotifyAll();
  });
  MutexLock lock(latch->mu);
  while (!latch->done) latch->cv.Wait(latch->mu);
  return latch->reply;
}

void QueryService::WorkerLoop() {
  ExecArena arena;
  // Worker-private trace shard, merged into the global sink per request
  // under the obs capability (the ExecuteShared contract: spans never go
  // to the process-wide sink directly).
  const bool tracing = GlobalTraceSinkIfEnabled() != nullptr;
  std::unique_ptr<TraceSink> trace =
      tracing ? std::make_unique<TraceSink>() : nullptr;
  while (true) {
    std::optional<Task> task = queue_.Pop();
    if (!task.has_value()) return;
    ProcessTask(&*task, &arena, trace.get());
    if (trace != nullptr) trace->Clear();
  }
}

void QueryService::ProcessTask(Task* task, ExecArena* arena,
                               TraceSink* trace) {
  const uint64_t now = Now();
  ServiceReply reply;
  reply.cache_hit = task->cache_hit;
  reply.predicted_width =
      task->plan != nullptr ? static_cast<int32_t>(task->plan->plan_width) : -1;
  reply.queue_ns =
      now >= task->arrival_ns ? static_cast<int64_t>(now - task->arrival_ns)
                              : 0;

  // Deadline checked at dequeue: a request that already waited past its
  // deadline is answered without burning any execution work on it.
  if (task->deadline_ms > 0 &&
      reply.queue_ns > static_cast<int64_t>(task->deadline_ms) * 1000000) {
    admission_.Release(task->admitted_bound);
    reply.status = ServiceStatus::kDeadlineExceeded;
    reply.detail = Status::Unavailable(
        "deadline of " + std::to_string(task->deadline_ms) +
        " ms expired in the admission queue");
    FinishAdmitted(task, reply, &ServiceCounters::deadline_expired,
                   "service.deadline_expired", nullptr, nullptr);
    return;
  }

  MetricsRegistry run;
  const ExecutionResult result = task->plan->physical.ExecuteShared(
      arena, task->budget, trace, &run);
  admission_.Release(task->admitted_bound);

  reply.wall_ns = static_cast<int64_t>(result.seconds * 1e9);
  reply.stats = result.stats;
  int64_t ServiceCounters::*counter = &ServiceCounters::errors;
  std::string_view event = "service.errors";
  if (result.status.ok()) {
    reply.status = ServiceStatus::kOk;
    reply.detail = Status::Ok();
    reply.output =
        RemapOutputFromCanonical(result.output, task->from_canonical);
    counter = &ServiceCounters::ok;
    event = "service.ok";
  } else if (result.status.code() == StatusCode::kResourceExhausted) {
    reply.status = ServiceStatus::kBudgetExhausted;
    reply.detail = result.status;
    counter = &ServiceCounters::budget_exhausted;
    event = "service.budget_exhausted";
  } else {
    reply.status = ServiceStatus::kError;
    reply.detail = result.status;
  }
  FinishAdmitted(task, reply, counter, event, &run, trace);
}

void QueryService::FinishAdmitted(Task* task, const ServiceReply& reply,
                                  int64_t ServiceCounters::*counter,
                                  std::string_view event,
                                  const MetricsRegistry* run,
                                  const TraceSink* trace) {
  {
    MutexLock lock(mu_);
    ++counters_.completed;
    ++(counters_.*counter);
  }
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  RecordOutcome(reply, task->fingerprint,
                static_cast<int32_t>(task->strategy), event,
                /*admitted=*/true, run, trace);
  task->done(reply);
}

void QueryService::Refuse(ServiceStatus status, Status detail,
                          uint64_t fingerprint, int32_t strategy_ordinal,
                          int64_t ServiceCounters::*counter,
                          std::string_view event, const ReplyFn& done) {
  {
    MutexLock lock(mu_);
    ++(counters_.*counter);
  }
  ServiceReply reply;
  reply.status = status;
  reply.detail = std::move(detail);
  RecordOutcome(reply, fingerprint, strategy_ordinal, event,
                /*admitted=*/false, nullptr, nullptr);
  done(reply);
}

void QueryService::RecordOutcome(const ServiceReply& reply,
                                 uint64_t fingerprint,
                                 int32_t strategy_ordinal,
                                 std::string_view event, bool admitted,
                                 const MetricsRegistry* run,
                                 const TraceSink* trace) {
  MutexLock lock(GlobalObsMutex());
  MetricsRegistry& global = GlobalMetrics();
  if (run != nullptr) global.Merge(*run);
  if (trace != nullptr && GlobalTraceSinkIfEnabled() != nullptr) {
    MergeIntoGlobalSink(*trace);
  }
  global.AddCounter("service.requests", 1);
  global.AddCounter(event, 1);
  if (admitted) {
    global.AddCounter("service.completed", 1);
    global.RecordHistogram("service.queue_ns",
                           static_cast<uint64_t>(std::max<int64_t>(
                               reply.queue_ns, 0)));
  }
  if (reply.ok()) {
    global.RecordHistogram("service.wall_ns",
                           static_cast<uint64_t>(std::max<int64_t>(
                               reply.wall_ns, 0)));
  }

  QueryLog* qlog = GlobalQueryLogIfEnabled();
  if (qlog == nullptr) return;
  QueryRecord rec;
  rec.fingerprint = fingerprint;
  rec.strategy = strategy_ordinal;
  rec.source = QuerySource::kService;
  rec.cache_hit = reply.cache_hit;
  ClassifyStatus(reply.detail, &rec);
  rec.wall_ns = reply.wall_ns;
  rec.tuples_produced = static_cast<int64_t>(reply.stats.tuples_produced);
  rec.output_rows = reply.ok() ? reply.output.size() : -1;
  rec.peak_bytes = static_cast<int64_t>(reply.stats.peak_bytes);
  rec.max_arity = reply.stats.max_intermediate_arity;
  rec.predicted_width = reply.predicted_width;
  rec.bound_headroom = reply.predicted_width >= 0
                           ? reply.predicted_width - rec.max_arity
                           : 0;
  rec.seq = qlog->Append(rec);
  // Shed/deadline/error anomalies (not client typos) arm the flight
  // recorder: the dump is the overload evidence.
  if (reply.status != ServiceStatus::kInvalid) {
    // Still under the MutexLock taken at the top of RecordOutcome; the
    // lint's 20-line window cannot see that far back.
    if (FlightRecorder* flights =
            GlobalFlightRecorderIfEnabled();  // pprlint: allow(obs-lock)
        flights != nullptr) {
      (void)flights->Observe(rec, *qlog, GlobalTraceSinkIfEnabled());
    }
  }
  if (records_since_flush_.fetch_add(1, std::memory_order_acq_rel) + 1 >=
      kFlushEvery) {
    records_since_flush_.store(0, std::memory_order_release);
    // Same RecordOutcome-wide MutexLock hold as above.
    (void)FlushQueryLogArtifact();  // pprlint: allow(obs-lock)
  }
}

void QueryService::Drain() {
  {
    MutexLock lock(mu_);
    if (drained_) return;
    drained_ = true;
  }
  // Refuse new submits, let the workers finish everything already
  // admitted (Close() lets consumers drain remaining items), join them,
  // then flush the telemetry artifacts.
  draining_.store(true, std::memory_order_release);
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  MutexLock obs(GlobalObsMutex());
  if (GlobalQueryLogIfEnabled() != nullptr) (void)FlushQueryLogArtifact();
  if (GlobalTraceSinkIfEnabled() != nullptr) (void)FlushTraceArtifacts();
}

ServiceCounters QueryService::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

std::string QueryToText(const ConjunctiveQuery& query) {
  std::string out = "pi{";
  bool first = true;
  for (const AttrId attr : query.free_vars()) {
    if (!first) out += ", ";
    first = false;
    out += "v" + std::to_string(attr);
  }
  out += "} ";
  first = true;
  for (const Atom& atom : query.atoms()) {
    if (!first) out += " & ";
    first = false;
    out += atom.relation;
    out += "(";
    bool first_arg = true;
    for (const AttrId arg : atom.args) {
      if (!first_arg) out += ", ";
      first_arg = false;
      out += "v" + std::to_string(arg);
    }
    out += ")";
  }
  return out;
}

}  // namespace ppr
