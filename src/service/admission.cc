#include "service/admission.h"

#include <algorithm>
#include <cmath>

namespace ppr {

const char* AdmitDecisionName(AdmitDecision decision) {
  switch (decision) {
    case AdmitDecision::kAdmit: return "admit";
    case AdmitDecision::kShedQuota: return "shed_quota";
    case AdmitDecision::kShedBound: return "shed_bound";
    case AdmitDecision::kRejectBound: return "reject_bound";
  }
  return "unknown";
}

AdmitDecision AdmissionController::Admit(uint64_t client_id,
                                         double tuple_bound,
                                         uint64_t now_ns) {
  MutexLock lock(mu_);

  // Bound gate first: a permanent rejection should not consume a quota
  // token (the client did nothing wrong rate-wise, the query is just too
  // expensive for this deployment).
  if (config_.max_inflight_tuple_bound > 0.0) {
    if (!(tuple_bound <= config_.max_inflight_tuple_bound)) {
      // NaN/inf predictions land here too: an unbounded static cost can
      // never provably fit the headroom.
      ++counters_.rejected_bound;
      return AdmitDecision::kRejectBound;
    }
    if (inflight_bound_ + tuple_bound > config_.max_inflight_tuple_bound) {
      ++counters_.shed_bound;
      return AdmitDecision::kShedBound;
    }
  }

  if (config_.quota_tokens > 0) {
    const double burst = static_cast<double>(config_.quota_tokens);
    // First sighting of a client starts with a full bucket.
    auto [it, inserted] = buckets_.try_emplace(
        client_id, Bucket{burst, now_ns});
    Bucket& bucket = it->second;
    if (!inserted && now_ns > bucket.last_refill_ns &&
        config_.quota_refill_per_sec > 0.0) {
      const double elapsed_s =
          static_cast<double>(now_ns - bucket.last_refill_ns) * 1e-9;
      bucket.tokens = std::min(
          burst, bucket.tokens + elapsed_s * config_.quota_refill_per_sec);
    }
    bucket.last_refill_ns = now_ns;
    if (bucket.tokens < 1.0) {
      ++counters_.shed_quota;
      return AdmitDecision::kShedQuota;
    }
    bucket.tokens -= 1.0;
  }

  if (config_.max_inflight_tuple_bound > 0.0) inflight_bound_ += tuple_bound;
  ++counters_.admitted;
  return AdmitDecision::kAdmit;
}

void AdmissionController::Release(double tuple_bound) {
  if (config_.max_inflight_tuple_bound <= 0.0) return;
  MutexLock lock(mu_);
  inflight_bound_ = std::max(0.0, inflight_bound_ - tuple_bound);
}

AdmissionController::Counters AdmissionController::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

double AdmissionController::inflight_bound() const {
  MutexLock lock(mu_);
  return inflight_bound_;
}

}  // namespace ppr
