#ifndef PPR_SERVICE_SERVER_H_
#define PPR_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "service/protocol.h"
#include "service/service.h"

namespace ppr {

/// TCP front end of the resident query service (the pprd daemon): one
/// accept thread plus one thread per connection, speaking the
/// length-prefixed frame protocol of service/protocol.h.
///
/// A connection may pipeline requests: each kRequest frame is submitted
/// to the QueryService immediately, and each response (header, row
/// batches, trailer) is written atomically under the connection's write
/// mutex when its reply arrives — responses to pipelined requests never
/// interleave at the frame level, and every response frame echoes the
/// request id, so clients match replies back in any case.
///
/// Undecodable request frames are answered with a kInvalid reply (the
/// connection survives); a broken stream (short frame, oversized length
/// prefix) closes the connection — there is no way to resynchronize a
/// byte stream with a corrupt length.
///
/// Stop() is the graceful-drain sequence: close the listener (no new
/// connections), drain the service (every admitted request's reply is
/// written before its worker moves on), then shut down the remaining
/// sockets and join the connection threads. Telemetry artifacts flush
/// inside QueryService::Drain.
struct ServerConfig {
  /// Listen address; the reference daemon is a loopback tool.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back via port()).
  int port = 0;
};

class ServiceServer {
 public:
  /// `service` must outlive the server.
  ServiceServer(QueryService* service, ServerConfig config);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds, listens, and starts the accept thread. Bind errors carry the
  /// attempted address and the OS error.
  Status Start();

  /// Graceful drain (see class comment). Idempotent.
  void Stop();

  /// The bound port (after Start).
  int port() const { return port_; }

  int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_acquire);
  }
  /// Responses whose socket write failed (client hung up mid-reply).
  int64_t write_errors() const {
    return write_errors_.load(std::memory_order_acquire);
  }

 private:
  /// One live connection. The fd is owned here and closed exactly once,
  /// in the destructor — reply callbacks hold the Conn alive via
  /// shared_ptr, so a worker finishing after the connection thread exits
  /// still writes to a valid (if shut-down) descriptor, never to a
  /// recycled fd number.
  struct Conn {
    explicit Conn(int fd) : fd(fd) {}
    ~Conn();
    const int fd;
    Mutex write_mu;
  };

  void AcceptLoop();
  void ConnLoop(const std::shared_ptr<Conn>& conn);
  /// Serializes one reply (header, batches, trailer) and writes it under
  /// the connection's write mutex.
  void WriteReply(const std::shared_ptr<Conn>& conn, uint64_t request_id,
                  const ServiceReply& reply);

  QueryService* const service_;
  const ServerConfig config_;
  int port_ = 0;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> write_errors_{0};

  Mutex mu_;
  bool stopped_ GUARDED_BY(mu_) = false;
  std::vector<std::shared_ptr<Conn>> conns_ GUARDED_BY(mu_);
  std::vector<std::thread> conn_threads_ GUARDED_BY(mu_);
};

}  // namespace ppr

#endif  // PPR_SERVICE_SERVER_H_
