#ifndef PPR_SERVICE_ADMISSION_H_
#define PPR_SERVICE_ADMISSION_H_

#include <cstdint>
#include <unordered_map>

#include "common/annotations.h"
#include "common/mutex.h"

namespace ppr {

/// What the admission controller decided for one request, before any
/// execution work was done.
enum class AdmitDecision : uint8_t {
  kAdmit = 0,
  /// Per-client token bucket empty — transient, retry after backoff.
  kShedQuota = 1,
  /// The predicted tuple bound fits the headroom in principle but not
  /// right now (other admitted work holds it) — transient.
  kShedBound = 2,
  /// The predicted tuple bound alone exceeds the configured headroom —
  /// permanent for this (query, strategy) under this configuration.
  kRejectBound = 3,
};
const char* AdmitDecisionName(AdmitDecision decision);

/// Admission control for the resident query service: decides, from a
/// request's client identity and the width analyzer's static row bound,
/// whether work may enter the execution queue at all.
///
/// Two independent gates, both checked under one mutex:
///
///  * Per-client token quotas: a classic token bucket per client id
///    (burst = `quota_tokens`, refill = `quota_refill_per_sec`). Zero
///    tokens disables the gate.
///  * Tuple-budget headroom: the sum of the predicted tuple bounds
///    (AnalyzePlan's tuples_produced_bound, the AGM-style static cost)
///    of all admitted-but-unfinished requests must stay within
///    `max_inflight_tuple_bound`. A request whose bound alone exceeds
///    the headroom is *rejected* (it can never fit); one that merely
///    does not fit now is *shed* (transient). Zero disables the gate.
///
/// Time is injected (nanoseconds) so quota refill is deterministic in
/// tests; callers pass a monotonic clock reading.
///
/// Threading: internally synchronized; any connection thread may call
/// Admit while workers call Release.
class AdmissionController {
 public:
  struct Config {
    /// Token-bucket burst per client; 0 disables quota checking.
    int64_t quota_tokens = 0;
    /// Tokens added per second per client.
    double quota_refill_per_sec = 0.0;
    /// Headroom for the sum of in-flight predicted tuple bounds; 0
    /// disables the bound gate.
    double max_inflight_tuple_bound = 0.0;
  };

  /// Deterministic admission counters (exported to /metrics).
  struct Counters {
    int64_t admitted = 0;
    int64_t shed_quota = 0;
    int64_t shed_bound = 0;
    int64_t rejected_bound = 0;
  };

  explicit AdmissionController(Config config) : config_(config) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Decides for one request. `tuple_bound` is the static predicted cost
  /// (may be +infinity when the analyzer cannot bound the query — an
  /// unbounded prediction never fits a finite headroom and is rejected).
  /// On kAdmit the bound is charged against the headroom and one quota
  /// token is consumed; every other decision charges nothing.
  AdmitDecision Admit(uint64_t client_id, double tuple_bound, uint64_t now_ns)
      EXCLUDES(mu_);

  /// Returns an admitted request's charge. Exactly one Release per
  /// kAdmit, after the request finished (or was answered
  /// kDeadlineExceeded).
  void Release(double tuple_bound) EXCLUDES(mu_);

  Counters counters() const EXCLUDES(mu_);

  /// Sum of in-flight admitted tuple bounds right now.
  double inflight_bound() const EXCLUDES(mu_);

  const Config& config() const { return config_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    uint64_t last_refill_ns = 0;
  };

  const Config config_;
  mutable Mutex mu_;
  std::unordered_map<uint64_t, Bucket> buckets_ GUARDED_BY(mu_);
  double inflight_bound_ GUARDED_BY(mu_) = 0.0;
  Counters counters_ GUARDED_BY(mu_);
};

}  // namespace ppr

#endif  // PPR_SERVICE_ADMISSION_H_
