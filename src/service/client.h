#ifndef PPR_SERVICE_CLIENT_H_
#define PPR_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"
#include "service/protocol.h"
#include "service/service.h"

namespace ppr {

/// Blocking client for the query service protocol: one connection, one
/// outstanding request at a time (Call is a full round trip). The load
/// generator runs many clients, each on its own connection — the
/// closed-loop shape — rather than pipelining on one.
class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient() { Close(); }

  ServiceClient(ServiceClient&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)) {}
  ServiceClient& operator=(ServiceClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  static Result<ServiceClient> Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends `request` and reads the full response (header, row batches,
  /// trailer) into a ServiceReply — the same struct in-process callers
  /// get, which is what the byte-identity checks compare. An error
  /// Status means the *transport or protocol* failed; service-level
  /// refusals (shed, rejected, deadline) are OK results with the
  /// corresponding ServiceStatus.
  Result<ServiceReply> Call(const ServiceRequest& request);

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace ppr

#endif  // PPR_SERVICE_CLIENT_H_
