#include "service/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace ppr {
namespace {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(std::string* out, int32_t v) { PutU32(out, static_cast<uint32_t>(v)); }
void PutI64(std::string* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked little-endian reader over a payload view.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadI32(int32_t* v) {
    uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool ReadI64(int64_t* v) {
    uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    s->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Starts a frame: reserves the length word and writes type + id.
/// FinishFrame backpatches the length once the payload is appended.
std::string BeginFrame(FrameType type, uint64_t request_id) {
  std::string out;
  PutU32(&out, 0);  // length placeholder
  PutU8(&out, static_cast<uint8_t>(type));
  PutU64(&out, request_id);
  return out;
}

void FinishFrame(std::string* frame) {
  const uint32_t body = static_cast<uint32_t>(frame->size() - 4);
  PPR_CHECK(body <= kMaxFrameBytes);
  for (int i = 0; i < 4; ++i) {
    (*frame)[static_cast<size_t>(i)] = static_cast<char>((body >> (8 * i)) & 0xff);
  }
}

}  // namespace

const char* ServiceStatusName(ServiceStatus status) {
  switch (status) {
    case ServiceStatus::kOk: return "ok";
    case ServiceStatus::kInvalid: return "invalid";
    case ServiceStatus::kRejected: return "rejected";
    case ServiceStatus::kOverloaded: return "overloaded";
    case ServiceStatus::kDeadlineExceeded: return "deadline_exceeded";
    case ServiceStatus::kBudgetExhausted: return "budget_exhausted";
    case ServiceStatus::kError: return "error";
    case ServiceStatus::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

std::string EncodeRequestFrame(const ServiceRequest& request) {
  std::string out = BeginFrame(FrameType::kRequest, request.request_id);
  PutU64(&out, request.client_id);
  PutI32(&out, request.strategy);
  PutU64(&out, request.seed);
  PutU64(&out, request.tuple_budget);
  PutU32(&out, request.deadline_ms);
  PutString(&out, request.query_text);
  FinishFrame(&out);
  return out;
}

std::string EncodeReplyHeaderFrame(uint64_t request_id,
                                   const ReplyHeader& header) {
  std::string out = BeginFrame(FrameType::kReplyHeader, request_id);
  PutU8(&out, static_cast<uint8_t>(header.status));
  PutI32(&out, header.status_code);
  PutU8(&out, header.cache_hit ? 1 : 0);
  PutI32(&out, header.predicted_width);
  PutU32(&out, static_cast<uint32_t>(header.attrs.size()));
  for (const AttrId attr : header.attrs) PutI32(&out, attr);
  PutString(&out, header.message);
  FinishFrame(&out);
  return out;
}

std::string EncodeRowBatchFrame(uint64_t request_id, const Relation& rows,
                                int64_t first, int64_t count) {
  PPR_CHECK(rows.arity() > 0 && first >= 0 && count >= 0 &&
            first + count <= rows.size());
  std::string out = BeginFrame(FrameType::kRowBatch, request_id);
  PutU32(&out, static_cast<uint32_t>(count));
  const int arity = rows.arity();
  for (int64_t r = first; r < first + count; ++r) {
    for (int c = 0; c < arity; ++c) PutI32(&out, rows.at(r, c));
  }
  FinishFrame(&out);
  return out;
}

std::string EncodeTrailerFrame(uint64_t request_id,
                               const ReplyTrailer& trailer) {
  std::string out = BeginFrame(FrameType::kTrailer, request_id);
  PutU8(&out, trailer.nonempty ? 1 : 0);
  PutI64(&out, trailer.tuples_produced);
  PutI64(&out, trailer.max_intermediate_rows);
  PutI64(&out, trailer.peak_bytes);
  PutI32(&out, trailer.max_arity);
  PutI64(&out, trailer.num_joins);
  PutI64(&out, trailer.num_projections);
  PutI64(&out, trailer.num_semijoins);
  PutI64(&out, trailer.wall_ns);
  PutI64(&out, trailer.queue_ns);
  FinishFrame(&out);
  return out;
}

Result<Frame> DecodeFrameBody(std::string_view body) {
  Cursor cur(body);
  uint8_t type = 0;
  Frame frame;
  if (!cur.ReadU8(&type) || !cur.ReadU64(&frame.request_id)) {
    return Status::InvalidArgument("frame body truncated before payload");
  }
  switch (type) {
    case static_cast<uint8_t>(FrameType::kRequest):
    case static_cast<uint8_t>(FrameType::kReplyHeader):
    case static_cast<uint8_t>(FrameType::kRowBatch):
    case static_cast<uint8_t>(FrameType::kTrailer):
      frame.type = static_cast<FrameType>(type);
      break;
    default:
      return Status::InvalidArgument("unknown frame type " +
                                     std::to_string(type));
  }
  frame.payload.assign(body.substr(body.size() - cur.remaining()));
  return frame;
}

Result<ServiceRequest> DecodeRequestPayload(std::string_view payload,
                                            uint64_t request_id) {
  Cursor cur(payload);
  ServiceRequest req;
  req.request_id = request_id;
  if (!cur.ReadU64(&req.client_id) || !cur.ReadI32(&req.strategy) ||
      !cur.ReadU64(&req.seed) || !cur.ReadU64(&req.tuple_budget) ||
      !cur.ReadU32(&req.deadline_ms) || !cur.ReadString(&req.query_text) ||
      !cur.AtEnd()) {
    return Status::InvalidArgument("malformed request payload");
  }
  return req;
}

Result<ReplyHeader> DecodeReplyHeaderPayload(std::string_view payload) {
  Cursor cur(payload);
  ReplyHeader header;
  uint8_t status = 0;
  uint8_t cache_hit = 0;
  uint32_t arity = 0;
  if (!cur.ReadU8(&status) || !cur.ReadI32(&header.status_code) ||
      !cur.ReadU8(&cache_hit) || !cur.ReadI32(&header.predicted_width) ||
      !cur.ReadU32(&arity)) {
    return Status::InvalidArgument("malformed reply header");
  }
  if (status > static_cast<uint8_t>(ServiceStatus::kShuttingDown)) {
    return Status::InvalidArgument("unknown service status " +
                                   std::to_string(status));
  }
  header.status = static_cast<ServiceStatus>(status);
  header.cache_hit = cache_hit != 0;
  header.attrs.resize(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    if (!cur.ReadI32(&header.attrs[i])) {
      return Status::InvalidArgument("malformed reply header schema");
    }
  }
  if (!cur.ReadString(&header.message) || !cur.AtEnd()) {
    return Status::InvalidArgument("malformed reply header message");
  }
  return header;
}

Result<ReplyTrailer> DecodeTrailerPayload(std::string_view payload) {
  Cursor cur(payload);
  ReplyTrailer trailer;
  uint8_t nonempty = 0;
  if (!cur.ReadU8(&nonempty) || !cur.ReadI64(&trailer.tuples_produced) ||
      !cur.ReadI64(&trailer.max_intermediate_rows) ||
      !cur.ReadI64(&trailer.peak_bytes) || !cur.ReadI32(&trailer.max_arity) ||
      !cur.ReadI64(&trailer.num_joins) ||
      !cur.ReadI64(&trailer.num_projections) ||
      !cur.ReadI64(&trailer.num_semijoins) || !cur.ReadI64(&trailer.wall_ns) ||
      !cur.ReadI64(&trailer.queue_ns) || !cur.AtEnd()) {
    return Status::InvalidArgument("malformed trailer payload");
  }
  trailer.nonempty = nonempty != 0;
  return trailer;
}

Status DecodeRowBatchPayload(std::string_view payload, Relation* out) {
  Cursor cur(payload);
  uint32_t nrows = 0;
  if (!cur.ReadU32(&nrows)) {
    return Status::InvalidArgument("malformed row batch");
  }
  const int arity = out->arity();
  if (arity <= 0) {
    return Status::InvalidArgument("row batch for nullary result");
  }
  if (cur.remaining() != static_cast<size_t>(nrows) *
                             static_cast<size_t>(arity) * sizeof(Value)) {
    return Status::InvalidArgument("row batch size mismatch");
  }
  std::vector<Value> row(static_cast<size_t>(arity));
  for (uint32_t r = 0; r < nrows; ++r) {
    for (int c = 0; c < arity; ++c) {
      if (!cur.ReadI32(&row[static_cast<size_t>(c)])) {
        return Status::InvalidArgument("row batch truncated");
      }
    }
    out->AppendRaw(row.data());
  }
  return Status::Ok();
}

Status SendFrame(int fd, const std::string& frame) {
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up mid-response must surface as an
    // error return, not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Internal(std::string("send failed: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

namespace {

/// Reads exactly `len` bytes; Ok(false) on clean EOF before the first
/// byte when `eof_ok`, error on truncation.
Result<bool> RecvExact(int fd, char* buf, size_t len, bool eof_ok) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      return Status::InvalidArgument("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv failed: ") +
                              std::strerror(errno));
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::string> RecvFrame(int fd) {
  char len_buf[4];
  Result<bool> got = RecvExact(fd, len_buf, sizeof(len_buf), /*eof_ok=*/true);
  if (!got.ok()) return got.status();
  if (!*got) return Status::NotFound("connection closed");
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(len_buf[i])) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length " + std::to_string(len) +
                                   " exceeds cap " +
                                   std::to_string(kMaxFrameBytes));
  }
  std::string body(len, '\0');
  got = RecvExact(fd, body.data(), body.size(), /*eof_ok=*/false);
  if (!got.ok()) return got.status();
  return body;
}

}  // namespace ppr
