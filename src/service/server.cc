#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace ppr {

ServiceServer::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

ServiceServer::ServiceServer(QueryService* service, ServerConfig config)
    : service_(service), config_(std::move(config)) {}

ServiceServer::~ServiceServer() { Stop(); }

Status ServiceServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  // SO_REUSEADDR: a restarted daemon must rebind its port without
  // waiting out TIME_WAIT sockets from the previous instance.
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable listen address " +
                                   config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind failed for " + config_.host + ":" +
                            std::to_string(config_.port) + ": " + detail);
  }
  if (::listen(listen_fd_, 128) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen failed for " + config_.host + ":" +
                            std::to_string(config_.port) + ": " + detail);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = config_.port;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ServiceServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down; anything else is equally terminal
      // for the accept loop (the daemon keeps serving open connections).
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    // Request/response frames are small; Nagle + delayed ACK would add
    // ~40ms per round trip for nothing.
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_acq_rel);
    auto conn = std::make_shared<Conn>(fd);
    MutexLock lock(mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { ConnLoop(conn); });
  }
}

void ServiceServer::ConnLoop(const std::shared_ptr<Conn>& conn) {
  while (true) {
    Result<std::string> body = RecvFrame(conn->fd);
    if (!body.ok()) {
      // Clean EOF between frames (NotFound), a shutdown during Stop, or
      // an unrecoverable framing error — all end the connection.
      return;
    }
    Result<Frame> frame = DecodeFrameBody(*body);
    if (!frame.ok()) {
      // Framing was intact (the length prefix was), so the stream is
      // still synchronized: answer kInvalid and keep serving.
      ServiceReply reply;
      reply.status = ServiceStatus::kInvalid;
      reply.detail = frame.status();
      WriteReply(conn, 0, reply);
      continue;
    }
    if (frame->type != FrameType::kRequest) {
      ServiceReply reply;
      reply.status = ServiceStatus::kInvalid;
      reply.detail = Status::InvalidArgument(
          "expected a request frame, got type " +
          std::to_string(static_cast<int>(frame->type)));
      WriteReply(conn, frame->request_id, reply);
      continue;
    }
    Result<ServiceRequest> request =
        DecodeRequestPayload(frame->payload, frame->request_id);
    if (!request.ok()) {
      ServiceReply reply;
      reply.status = ServiceStatus::kInvalid;
      reply.detail = request.status();
      WriteReply(conn, frame->request_id, reply);
      continue;
    }
    const uint64_t request_id = request->request_id;
    // The reply callback may run on a worker thread (admitted) or inline
    // on this thread (refused); `conn` rides in the closure, keeping the
    // fd alive until the last reply is written.
    service_->Submit(*request, [this, conn, request_id](ServiceReply reply) {
      WriteReply(conn, request_id, reply);
    });
  }
}

void ServiceServer::WriteReply(const std::shared_ptr<Conn>& conn,
                               uint64_t request_id,
                               const ServiceReply& reply) {
  ReplyHeader header;
  header.status = reply.status;
  header.status_code = static_cast<int32_t>(reply.detail.code());
  header.cache_hit = reply.cache_hit;
  header.predicted_width = reply.predicted_width;
  header.message = reply.detail.message();
  const bool rows = reply.ok() && reply.output.arity() > 0;
  if (rows) {
    const Schema& schema = reply.output.schema();
    header.attrs.reserve(static_cast<size_t>(schema.arity()));
    for (int c = 0; c < schema.arity(); ++c) {
      header.attrs.push_back(schema.attr(c));
    }
  }
  ReplyTrailer trailer;
  trailer.nonempty = reply.ok() && !reply.output.empty();
  trailer.tuples_produced = static_cast<int64_t>(reply.stats.tuples_produced);
  trailer.max_intermediate_rows =
      static_cast<int64_t>(reply.stats.max_intermediate_rows);
  trailer.peak_bytes = static_cast<int64_t>(reply.stats.peak_bytes);
  trailer.max_arity = reply.stats.max_intermediate_arity;
  trailer.num_joins = static_cast<int64_t>(reply.stats.num_joins);
  trailer.num_projections =
      static_cast<int64_t>(reply.stats.num_projections);
  trailer.num_semijoins = static_cast<int64_t>(reply.stats.num_semijoins);
  trailer.wall_ns = reply.wall_ns;
  trailer.queue_ns = reply.queue_ns;

  // One lock across the whole response: frames of pipelined replies
  // never interleave.
  MutexLock lock(conn->write_mu);
  Status sent = SendFrame(conn->fd, EncodeReplyHeaderFrame(request_id, header));
  if (sent.ok() && rows) {
    const int64_t total = reply.output.size();
    for (int64_t first = 0; sent.ok() && first < total;
         first += kRowBatchRows) {
      const int64_t count = std::min<int64_t>(kRowBatchRows, total - first);
      sent = SendFrame(conn->fd,
                       EncodeRowBatchFrame(request_id, reply.output, first,
                                           count));
    }
  }
  if (sent.ok()) {
    sent = SendFrame(conn->fd, EncodeTrailerFrame(request_id, trailer));
  }
  if (!sent.ok()) write_errors_.fetch_add(1, std::memory_order_acq_rel);
}

void ServiceServer::Stop() {
  {
    MutexLock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);

  // 1. No new connections: shut the listener down and join the acceptor.
  if (listen_fd_ >= 0) (void)::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Drain the service: connection threads may still submit (answered
  // kShuttingDown inline); every admitted request's reply is written by
  // its worker before Drain returns, and telemetry artifacts flush.
  service_->Drain();

  // 3. Unblock connection threads stuck in recv and join them. The Conn
  // objects (and their fds) die with the last shared_ptr.
  std::vector<std::shared_ptr<Conn>> conns;
  std::vector<std::thread> threads;
  {
    MutexLock lock(mu_);
    conns.swap(conns_);
    threads.swap(conn_threads_);
  }
  for (const std::shared_ptr<Conn>& conn : conns) {
    (void)::shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

}  // namespace ppr
