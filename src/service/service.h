#ifndef PPR_SERVICE_SERVICE_H_
#define PPR_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "benchlib/harness.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/types.h"
#include "exec/executor.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"
#include "runtime/bounded_queue.h"
#include "runtime/plan_cache.h"
#include "service/admission.h"
#include "service/protocol.h"

namespace ppr {

/// Configuration of one resident query service.
struct ServiceConfig {
  /// Worker threads executing admitted requests; 0 auto-picks
  /// (PPR_THREADS when set, otherwise the hardware thread count).
  int num_workers = 1;
  /// Capacity of the bounded admission queue between the front end and
  /// the workers. A full queue sheds (fast kOverloaded), never blocks
  /// the connection thread and never drops silently.
  size_t queue_depth = 64;
  /// Admission gates (service/admission.h); zeros disable them.
  AdmissionController::Config admission;
  /// Strategy used when a request asks for the default (-1).
  StrategyKind default_strategy = StrategyKind::kBucketElimination;
  /// Server-side tuple-budget ceiling; client budgets are clamped to it.
  Counter max_tuple_budget = kCounterMax;
  /// Deadline applied when a request carries none; 0 = none.
  uint32_t default_deadline_ms = 0;
  /// Plan-cache capacity (compiled canonical plans shared across
  /// requests — the warm-cache serving path for repeated query shapes).
  size_t cache_capacity = 1024;
  /// Monotonic nanosecond clock. Null uses std::chrono::steady_clock;
  /// tests inject a fake clock to make quota refill and deadline expiry
  /// deterministic.
  std::function<uint64_t()> clock;
};

/// Everything the service decided and produced for one request — the
/// in-process mirror of the wire reply (ReplyHeader + batches + trailer).
struct ServiceReply {
  ServiceStatus status = ServiceStatus::kError;
  /// The underlying ppr::Status (OK for kOk).
  Status detail;
  /// Answer relation; meaningful only for kOk.
  Relation output;
  ExecStats stats;
  /// Execution wall time (0 when the request never executed).
  int64_t wall_ns = 0;
  /// Admission-to-dequeue wait.
  int64_t queue_ns = 0;
  bool cache_hit = false;
  int32_t predicted_width = -1;

  bool ok() const { return status == ServiceStatus::kOk; }
};

/// Deterministic service counters (mirrored into the global metrics
/// registry under the service.* names for /metrics and pprstat serve).
struct ServiceCounters {
  int64_t requests = 0;          // every Submit
  int64_t admitted = 0;          // entered the execution queue
  int64_t completed = 0;         // admitted requests answered (any status)
  int64_t ok = 0;
  int64_t invalid = 0;           // parse/validation/strategy errors
  int64_t rejected_bound = 0;    // permanent bound-based rejections
  int64_t shed_quota = 0;
  int64_t shed_bound = 0;
  int64_t shed_queue = 0;        // TryPush found the queue full
  int64_t shed_draining = 0;     // arrived after Drain started
  int64_t deadline_expired = 0;
  int64_t budget_exhausted = 0;
  int64_t errors = 0;

  int64_t shed_total() const { return shed_quota + shed_bound + shed_queue; }
};

/// The resident query service: parse → fingerprint → PlanCache →
/// execute, behind admission control and a bounded queue.
///
/// Life of a request (Submit):
///
///   1. Front-end work on the *calling* thread: parse the query text,
///      validate it against the catalog, canonicalize, and fetch the
///      compiled plan from the plan cache (single-flight compile on a
///      miss — planning cost, not execution cost; repeated query shapes
///      hit the cache and skip it entirely).
///   2. Admission: the width analyzer's tuples_produced_bound for the
///      cached plan feeds the AdmissionController — reject (bound can
///      never fit), shed (quota/headroom/queue-full), or admit.
///   3. Admitted requests enter the BoundedQueue; a worker pops, checks
///      the deadline, executes with a worker-private arena, remaps the
///      canonical output back, and completes the reply.
///
/// The reply callback fires exactly once per Submit: on a worker thread
/// for admitted requests, on the calling thread for shed/invalid ones
/// (the fast-refusal path does no execution work). Callbacks may block —
/// the worker simply stalls, which tests use to hold a worker at a known
/// point — but a production callback should only hand the reply off.
///
/// Shedding is never silent: every shed/rejected/drained request gets a
/// reply, a service.* counter, and (when the flight recorder is armed) a
/// flight dump capturing the overload evidence.
///
/// Drain(): stop admitting (new submits answer kShuttingDown), let the
/// workers finish everything already admitted, join them, then flush
/// telemetry artifacts (query log, trace). Idempotent; the destructor
/// calls it.
class QueryService {
 public:
  using ReplyFn = std::function<void(ServiceReply)>;

  /// The database must outlive the service and all cached plans.
  QueryService(const Database& db, ServiceConfig config);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one request; `done` fires exactly once (see class comment).
  void Submit(const ServiceRequest& request, ReplyFn done);

  /// Blocking convenience: Submit + wait for the reply.
  ServiceReply Execute(const ServiceRequest& request);

  /// Graceful drain; see class comment.
  void Drain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServiceCounters counters() const;
  const AdmissionController& admission() const { return admission_; }
  PlanCache::Stats cache_stats() const { return cache_.stats(); }
  int num_workers() const { return num_workers_; }
  /// Admitted-but-unanswered requests right now.
  int64_t inflight() const { return inflight_.load(std::memory_order_acquire); }

 private:
  struct Task {
    uint64_t request_id = 0;
    uint64_t client_id = 0;
    StrategyKind strategy = StrategyKind::kBucketElimination;
    uint64_t seed = 0;
    Counter budget = kCounterMax;
    uint32_t deadline_ms = 0;
    uint64_t arrival_ns = 0;
    uint64_t fingerprint = 0;
    double admitted_bound = 0.0;
    std::shared_ptr<const CachedPlan> plan;
    std::vector<AttrId> from_canonical;
    bool cache_hit = false;
    ReplyFn done;
  };

  uint64_t Now() const;
  void WorkerLoop();
  void ProcessTask(Task* task, ExecArena* arena, TraceSink* trace);
  /// Refusal path: count (`counter` picks the ServiceCounters field,
  /// `event` the mirrored service.* metric), record, and deliver a
  /// no-execution reply on the current thread.
  void Refuse(ServiceStatus status, Status detail, uint64_t fingerprint,
              int32_t strategy_ordinal, int64_t ServiceCounters::*counter,
              std::string_view event, const ReplyFn& done);
  /// Terminal bookkeeping for an admitted task (counters, inflight,
  /// record) and reply delivery.
  void FinishAdmitted(Task* task, const ServiceReply& reply,
                      int64_t ServiceCounters::*counter,
                      std::string_view event, const MetricsRegistry* run,
                      const TraceSink* trace);
  /// Appends a query record (+ flight observation) for a finished or
  /// refused request and mirrors the event into the global registry.
  /// Called with GlobalObsMutex NOT held.
  void RecordOutcome(const ServiceReply& reply, uint64_t fingerprint,
                     int32_t strategy_ordinal, std::string_view event,
                     bool admitted, const MetricsRegistry* run,
                     const TraceSink* trace);

  const Database& db_;
  ServiceConfig config_;
  int num_workers_ = 1;
  uint64_t db_fingerprint_ = 0;
  AdmissionController admission_;
  PlanCache cache_;
  BoundedQueue<Task> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> inflight_{0};
  std::atomic<uint64_t> records_since_flush_{0};

  mutable Mutex mu_;
  ServiceCounters counters_ GUARDED_BY(mu_);
  bool drained_ GUARDED_BY(mu_) = false;
};

/// Renders a query in the text syntax ParseQuery accepts (attribute k
/// prints as "v<k>"): the wire format queries travel in. Round-trips up
/// to the parser's first-appearance attribute renumbering — parsing the
/// rendered text yields an isomorphic query with the same answers.
std::string QueryToText(const ConjunctiveQuery& query);

}  // namespace ppr

#endif  // PPR_SERVICE_SERVICE_H_
