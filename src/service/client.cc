#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <span>

#include "relational/schema.h"

namespace ppr {

Result<ServiceClient> ServiceClient::Connect(const std::string& host,
                                             int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("connect to " + host + ":" +
                               std::to_string(port) + " failed: " + detail);
  }
  // One small request frame per round trip: disable Nagle so the write
  // is not held hostage to the peer's delayed ACK.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return ServiceClient(fd);
}

void ServiceClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ServiceReply> ServiceClient::Call(const ServiceRequest& request) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  if (Status sent = SendFrame(fd_, EncodeRequestFrame(request)); !sent.ok()) {
    return sent;
  }

  // Header first.
  Result<std::string> body = RecvFrame(fd_);
  if (!body.ok()) return body.status();
  Result<Frame> frame = DecodeFrameBody(*body);
  if (!frame.ok()) return frame.status();
  if (frame->type != FrameType::kReplyHeader) {
    return Status::InvalidArgument("expected a reply header frame");
  }
  if (frame->request_id != request.request_id) {
    return Status::InvalidArgument(
        "response id " + std::to_string(frame->request_id) +
        " does not match request id " + std::to_string(request.request_id));
  }
  Result<ReplyHeader> header = DecodeReplyHeaderPayload(frame->payload);
  if (!header.ok()) return header.status();

  ServiceReply reply;
  reply.status = header->status;
  reply.cache_hit = header->cache_hit;
  reply.predicted_width = header->predicted_width;
  if (header->status_code != 0) {
    if (header->status_code < 0 ||
        header->status_code > static_cast<int32_t>(StatusCode::kUnavailable)) {
      return Status::InvalidArgument("unknown status code " +
                                     std::to_string(header->status_code));
    }
    reply.detail = Status(static_cast<StatusCode>(header->status_code),
                          header->message);
  }
  if (reply.ok()) {
    reply.output = Relation(Schema(header->attrs));
  }

  // Row batches until the trailer.
  while (true) {
    body = RecvFrame(fd_);
    if (!body.ok()) return body.status();
    frame = DecodeFrameBody(*body);
    if (!frame.ok()) return frame.status();
    if (frame->request_id != request.request_id) {
      return Status::InvalidArgument("response frames interleaved");
    }
    if (frame->type == FrameType::kRowBatch) {
      if (!reply.ok()) {
        return Status::InvalidArgument("row batch on a non-OK response");
      }
      if (Status appended = DecodeRowBatchPayload(frame->payload,
                                                  &reply.output);
          !appended.ok()) {
        return appended;
      }
      continue;
    }
    if (frame->type != FrameType::kTrailer) {
      return Status::InvalidArgument("unexpected frame inside a response");
    }
    Result<ReplyTrailer> trailer = DecodeTrailerPayload(frame->payload);
    if (!trailer.ok()) return trailer.status();
    reply.stats.tuples_produced = trailer->tuples_produced;
    reply.stats.max_intermediate_rows = trailer->max_intermediate_rows;
    reply.stats.peak_bytes = trailer->peak_bytes;
    reply.stats.max_intermediate_arity = trailer->max_arity;
    reply.stats.num_joins = trailer->num_joins;
    reply.stats.num_projections = trailer->num_projections;
    reply.stats.num_semijoins = trailer->num_semijoins;
    reply.wall_ns = trailer->wall_ns;
    reply.queue_ns = trailer->queue_ns;
    // Boolean answers have no row batches; the trailer carries the bit.
    if (reply.ok() && reply.output.arity() == 0 && trailer->nonempty) {
      reply.output.AddTuple(std::span<const Value>{});
    }
    return reply;
  }
}

}  // namespace ppr
