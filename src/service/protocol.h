#ifndef PPR_SERVICE_PROTOCOL_H_
#define PPR_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "relational/exec_context.h"
#include "relational/relation.h"

namespace ppr {

/// Wire protocol of the resident query service (examples/pprd): binary
/// frames over a byte stream, every frame
///
///     [u32 body_len (LE)] [u8 frame_type] [u64 request_id] [payload]
///
/// where body_len counts everything after the length word. A request is
/// one kRequest frame; the response to it is one kReplyHeader frame,
/// then — for OK replies with rows — zero or more kRowBatch frames, then
/// always exactly one kTrailer frame (the end-of-response marker, carrying
/// the ExecStats the run produced). request_id echoes the client's value
/// on every response frame, so pipelined requests on one connection can
/// be matched back.
///
/// All integers are little-endian fixed-width; strings are a u32 byte
/// length followed by the bytes. Frames are size-capped (kMaxFrameBytes)
/// so a malformed length prefix cannot make either side allocate
/// unboundedly; servers answer undecodable request *payloads* with a
/// kInvalid reply (the framing is intact, the connection survives),
/// while a corrupt length prefix closes the connection — a byte stream
/// cannot be resynchronized past it.
enum class FrameType : uint8_t {
  kRequest = 1,
  kReplyHeader = 2,
  kRowBatch = 3,
  kTrailer = 4,
};

/// Terminal disposition of one request, from the client's point of view.
/// The admission controller's decisions surface here: kRejected is
/// permanent (this query can never fit the configured headroom — do not
/// retry), kOverloaded is transient shedding (quota exhausted, queue
/// full, or headroom currently consumed — retry after backoff), and
/// kShuttingDown means the daemon is draining. Every admitted-or-shed
/// request gets exactly one response; the service never drops silently.
enum class ServiceStatus : uint8_t {
  kOk = 0,
  /// Malformed request: parse error, unknown strategy, frame too large.
  kInvalid = 1,
  /// Bound-based rejection: the width analyzer's predicted row bound for
  /// this query alone exceeds the configured tuple headroom.
  kRejected = 2,
  /// Overload shed: per-client quota, tuple-headroom, or queue-full.
  kOverloaded = 3,
  /// The request's deadline expired while it waited in the queue.
  kDeadlineExceeded = 4,
  /// Execution exhausted the tuple budget (the deterministic timeout).
  kBudgetExhausted = 5,
  /// Compile/execution error (verifier rejection, internal failure).
  kError = 6,
  /// The service is draining and admits no new work.
  kShuttingDown = 7,
};
const char* ServiceStatusName(ServiceStatus status);

/// One query request. `strategy` is a StrategyKind ordinal
/// (benchlib/harness.h) — the protocol module cannot depend on benchlib,
/// so validation against the real enum happens in the service; -1 asks
/// for the server's default strategy.
struct ServiceRequest {
  uint64_t request_id = 0;
  /// Admission identity for per-client token quotas. Clients choose it;
  /// the reference daemon trusts it (loopback tool, not an auth system).
  uint64_t client_id = 0;
  int32_t strategy = -1;
  uint64_t seed = 0;
  /// Tuple budget for the execution; 0 means the server-side maximum.
  uint64_t tuple_budget = 0;
  /// Relative deadline from arrival; 0 means none. Checked at dequeue:
  /// a request that waited past its deadline is answered
  /// kDeadlineExceeded without doing any execution work.
  uint32_t deadline_ms = 0;
  /// Query text in the parser syntax: `pi{X, Y} edge(X, Z) & edge(Z, Y)`.
  std::string query_text;
};

/// First response frame: disposition plus the output schema of an OK
/// reply (attribute ids of the parsed query, in result column order).
struct ReplyHeader {
  ServiceStatus status = ServiceStatus::kError;
  /// StatusCode ordinal of the underlying ppr::Status.
  int32_t status_code = 0;
  /// Whether the compiled plan came from the plan cache.
  bool cache_hit = false;
  /// Static join width the planner promised; -1 when no plan was built.
  int32_t predicted_width = -1;
  /// Result schema (empty for Boolean queries and non-OK replies).
  std::vector<AttrId> attrs;
  /// Human-readable detail for non-OK replies.
  std::string message;
};

/// Final response frame: execution statistics and timing. `nonempty`
/// carries the Boolean answer for nullary results (which have no row
/// batches to carry it).
struct ReplyTrailer {
  bool nonempty = false;
  int64_t tuples_produced = 0;
  int64_t max_intermediate_rows = 0;
  int64_t peak_bytes = 0;
  int32_t max_arity = 0;
  int64_t num_joins = 0;
  int64_t num_projections = 0;
  int64_t num_semijoins = 0;
  /// Execution wall time (0 for replies that never executed).
  int64_t wall_ns = 0;
  /// Admission-to-dequeue wait (how long the request sat in the queue).
  int64_t queue_ns = 0;
};

/// Hard cap on a single frame's body; both sides refuse larger. Requests
/// are tiny (query text); responses chunk rows into kRowBatchRows-row
/// batches, so this bounds memory per read regardless of result size.
inline constexpr uint32_t kMaxFrameBytes = 1u << 24;  // 16 MiB
/// Rows per kRowBatch frame.
inline constexpr int64_t kRowBatchRows = 1024;

/// Frame encoders: each returns a complete frame (length prefix
/// included) ready to write to the stream.
std::string EncodeRequestFrame(const ServiceRequest& request);
std::string EncodeReplyHeaderFrame(uint64_t request_id,
                                   const ReplyHeader& header);
/// Encodes rows [first, first + count) of `rows` (column count = arity).
std::string EncodeRowBatchFrame(uint64_t request_id, const Relation& rows,
                                int64_t first, int64_t count);
std::string EncodeTrailerFrame(uint64_t request_id,
                               const ReplyTrailer& trailer);

/// A decoded frame: type, request id, and the payload bytes after them.
struct Frame {
  FrameType type = FrameType::kRequest;
  uint64_t request_id = 0;
  std::string payload;
};

/// Splits one frame body (everything after the u32 length word) into
/// type/id/payload. Fails on truncated bodies or unknown frame types.
Result<Frame> DecodeFrameBody(std::string_view body);

/// Payload decoders (the `payload` of a decoded Frame).
Result<ServiceRequest> DecodeRequestPayload(std::string_view payload,
                                            uint64_t request_id);
Result<ReplyHeader> DecodeReplyHeaderPayload(std::string_view payload);
Result<ReplyTrailer> DecodeTrailerPayload(std::string_view payload);
/// Appends the batch's rows to `out`, which must already carry the
/// header's schema (arity is validated against it).
Status DecodeRowBatchPayload(std::string_view payload, Relation* out);

/// Blocking socket helpers shared by the server and client: write all of
/// `frame`, or read exactly one length-prefixed frame body (size-capped).
/// RecvFrame returns NotFound on clean EOF at a frame boundary — the
/// peer hung up between frames, the normal end of a connection.
Status SendFrame(int fd, const std::string& frame);
Result<std::string> RecvFrame(int fd);

}  // namespace ppr

#endif  // PPR_SERVICE_PROTOCOL_H_
